package dataloop

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"

	"spinddt/internal/ddt"
)

func compile(t *testing.T, typ *ddt.Type, count int) *Dataloop {
	t.Helper()
	loop, err := CompileCount(typ, count)
	if err != nil {
		t.Fatalf("compile: %v\n%s", err, typ.Describe())
	}
	return loop
}

func regionsFromDDT(typ *ddt.Type, count int) []Region {
	var out []Region
	typ.ForEachBlock(count, func(off, size int64) {
		out = append(out, Region{MemOff: off, Size: size})
	})
	return out
}

func TestCompileSizeMatchesType(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 200; iter++ {
		typ := ddt.RandomType(rng, 3)
		count := 1 + rng.Intn(3)
		loop := compile(t, typ, count)
		if loop.Size() != typ.Size()*int64(count) {
			t.Fatalf("iter %d: loop size %d, type size %d\n%s",
				iter, loop.Size(), typ.Size()*int64(count), typ.Describe())
		}
	}
}

func TestRegionsMatchTypemap(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 200; iter++ {
		typ := ddt.RandomType(rng, 3)
		count := 1 + rng.Intn(3)
		loop := compile(t, typ, count)
		got := NewSegment(loop).Regions()
		want := regionsFromDDT(typ, count)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("iter %d: regions mismatch\n got: %v\nwant: %v\n%s",
				iter, got, want, typ.Describe())
		}
	}
}

func TestVectorLeafCompile(t *testing.T) {
	v := ddt.MustVector(4, 2, 4, ddt.Int)
	loop := compile(t, v, 1)
	if !loop.Leaf() || loop.Kind != Vector {
		t.Fatalf("vector of int should compile to a leaf vector, got %v", loop)
	}
	if loop.Depth() != 1 || loop.Nodes() != 1 {
		t.Fatalf("depth=%d nodes=%d", loop.Depth(), loop.Nodes())
	}
}

func TestNestedVectorCompile(t *testing.T) {
	inner := ddt.MustVector(3, 1, 2, ddt.Int)
	outer := ddt.MustVector(2, 1, 8, inner)
	loop := compile(t, outer, 1)
	if loop.Leaf() {
		t.Fatal("vector of vectors must be interior")
	}
	if loop.Depth() != 2 {
		t.Fatalf("depth = %d", loop.Depth())
	}
}

func TestContiguousCollapsesToLeaf(t *testing.T) {
	c := ddt.MustContiguous(16, ddt.Double)
	loop := compile(t, c, 4)
	if !loop.Leaf() {
		t.Fatalf("contiguous run should be a single leaf, got %v", loop)
	}
	regions := NewSegment(loop).Regions()
	if len(regions) != 1 || regions[0] != (Region{0, 4 * 16 * 8}) {
		t.Fatalf("regions = %v", regions)
	}
}

func TestStructMixedMembersCompile(t *testing.T) {
	col := ddt.MustVector(2, 1, 2, ddt.Int)
	s := ddt.MustStruct([]int{1, 2}, []int64{0, 64}, []*ddt.Type{col, ddt.Double})
	loop := compile(t, s, 1)
	if loop.Kind != Struct {
		t.Fatalf("kind = %v", loop.Kind)
	}
	got := NewSegment(loop).Regions()
	want := regionsFromDDT(s, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("regions mismatch\n got %v\nwant %v", got, want)
	}
}

func TestSubarrayCompileWithShift(t *testing.T) {
	sa := ddt.MustSubarray([]int{4, 5}, []int{2, 3}, []int{1, 1}, ddt.Double)
	loop := compile(t, sa, 1)
	got := NewSegment(loop).Regions()
	want := regionsFromDDT(sa, 1)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("regions mismatch\n got %v\nwant %v", got, want)
	}
}

func TestCompileEmptyType(t *testing.T) {
	empty := ddt.MustContiguous(0, ddt.Int)
	if _, err := Compile(empty); err == nil {
		t.Fatal("compiling empty type must fail")
	}
	if _, err := CompileCount(ddt.Int, 0); err == nil {
		t.Fatal("count 0 must fail")
	}
}

func TestProcessFullRangeUnpacks(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 100; iter++ {
		typ := ddt.RandomType(rng, 3)
		count := 1 + rng.Intn(3)
		loop := compile(t, typ, count)

		_, hi := typ.Footprint(count)
		src := make([]byte, hi)
		rng.Read(src)
		packed, err := ddt.Pack(typ, count, src)
		if err != nil {
			t.Fatal(err)
		}

		dst := make([]byte, hi)
		seg := NewSegment(loop)
		_, err = seg.Process(0, loop.Size(), func(memOff, streamOff, size int64) {
			copy(dst[memOff:memOff+size], packed[streamOff:streamOff+size])
		})
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}

		want := make([]byte, hi)
		if err := ddt.Unpack(typ, count, packed, want); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("iter %d: segment unpack differs from reference\n%s", iter, typ.Describe())
		}
		if !seg.Finished() {
			t.Fatalf("iter %d: segment not finished after full range", iter)
		}
	}
}

// TestProcessArbitraryPartitions is the central property: processing the
// stream in any partition of sub-ranges gives the same bytes as one pass.
func TestProcessArbitraryPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for iter := 0; iter < 150; iter++ {
		typ := ddt.RandomType(rng, 3)
		count := 1 + rng.Intn(4)
		loop := compile(t, typ, count)
		total := loop.Size()

		_, hi := typ.Footprint(count)
		src := make([]byte, hi)
		rng.Read(src)
		packed, _ := ddt.Pack(typ, count, src)
		want := make([]byte, hi)
		if err := ddt.Unpack(typ, count, packed, want); err != nil {
			t.Fatal(err)
		}

		// Random cut points.
		cuts := []int64{0, total}
		for i := 0; i < rng.Intn(6); i++ {
			cuts = append(cuts, rng.Int63n(total+1))
		}
		sortInt64s(cuts)

		dst := make([]byte, hi)
		seg := NewSegment(loop)
		for i := 0; i+1 < len(cuts); i++ {
			_, err := seg.Process(cuts[i], cuts[i+1], func(memOff, streamOff, size int64) {
				copy(dst[memOff:memOff+size], packed[streamOff:streamOff+size])
			})
			if err != nil {
				t.Fatalf("iter %d: process [%d,%d): %v", iter, cuts[i], cuts[i+1], err)
			}
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("iter %d: partitioned unpack differs\ncuts=%v\n%s", iter, cuts, typ.Describe())
		}
	}
}

func sortInt64s(xs []int64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestProcessCatchupSkipsData(t *testing.T) {
	v := ddt.MustVector(8, 1, 2, ddt.Int) // 8 blocks of 4B
	loop := compile(t, v, 1)
	seg := NewSegment(loop)
	var emitted []Region
	st, err := seg.Process(12, 20, func(memOff, streamOff, size int64) {
		emitted = append(emitted, Region{memOff, size})
	})
	if err != nil {
		t.Fatal(err)
	}
	// Stream [12,20) covers packed blocks 3 and 4 -> memory offsets 24, 32.
	want := []Region{{24, 4}, {32, 4}}
	if !reflect.DeepEqual(emitted, want) {
		t.Fatalf("emitted = %v, want %v", emitted, want)
	}
	if st.CatchupBytes != 12 || st.CatchupBlocks != 3 {
		t.Fatalf("catchup bytes=%d blocks=%d", st.CatchupBytes, st.CatchupBlocks)
	}
	if st.EmitBytes != 8 || st.EmitRegions != 2 {
		t.Fatalf("emit bytes=%d regions=%d", st.EmitBytes, st.EmitRegions)
	}
}

func TestProcessBackwardRangeResets(t *testing.T) {
	v := ddt.MustVector(8, 1, 2, ddt.Int)
	loop := compile(t, v, 1)
	seg := NewSegment(loop)
	if _, err := seg.Process(16, 24, nil); err != nil {
		t.Fatal(err)
	}
	st, err := seg.Process(4, 8, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !st.DidReset {
		t.Fatal("backward range did not reset")
	}
	if seg.Pos() != 8 {
		t.Fatalf("pos = %d", seg.Pos())
	}
}

func TestProcessMidBlockSplit(t *testing.T) {
	// Blocks of 8 bytes; split mid-block at 4.
	v := ddt.MustVector(4, 2, 4, ddt.Int)
	loop := compile(t, v, 1)
	seg := NewSegment(loop)
	var first []Region
	if _, err := seg.Process(0, 4, func(m, s, n int64) { first = append(first, Region{m, n}) }); err != nil {
		t.Fatal(err)
	}
	var second []Region
	if _, err := seg.Process(4, 12, func(m, s, n int64) { second = append(second, Region{m, n}) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, []Region{{0, 4}}) {
		t.Fatalf("first = %v", first)
	}
	// Second half of block 0 (mem 4..8), then first half of block 1 (mem 16..20).
	if !reflect.DeepEqual(second, []Region{{4, 4}, {16, 4}}) {
		t.Fatalf("second = %v", second)
	}
}

func TestProcessRangeErrors(t *testing.T) {
	loop := compile(t, ddt.MustContiguous(4, ddt.Int), 1)
	seg := NewSegment(loop)
	if _, err := seg.Process(-1, 4, nil); err == nil {
		t.Error("negative first accepted")
	}
	if _, err := seg.Process(0, 17, nil); err == nil {
		t.Error("last beyond stream accepted")
	}
	if _, err := seg.Process(8, 4, nil); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestCloneIndependence(t *testing.T) {
	v := ddt.MustVector(8, 1, 2, ddt.Int)
	loop := compile(t, v, 1)
	seg := NewSegment(loop)
	if _, err := seg.Process(0, 8, nil); err != nil {
		t.Fatal(err)
	}
	snap := seg.Clone()
	if _, err := seg.Process(8, 32, nil); err != nil {
		t.Fatal(err)
	}
	if snap.Pos() != 8 {
		t.Fatalf("clone pos changed to %d", snap.Pos())
	}
	// The clone must continue correctly from its snapshot position.
	var rs []Region
	if _, err := snap.Process(8, 12, func(m, s, n int64) { rs = append(rs, Region{m, n}) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, []Region{{16, 4}}) {
		t.Fatalf("clone emitted %v", rs)
	}
}

func TestCopyFrom(t *testing.T) {
	v := ddt.MustVector(8, 1, 2, ddt.Int)
	loop := compile(t, v, 1)
	a := NewSegment(loop)
	if _, err := a.Process(0, 12, nil); err != nil {
		t.Fatal(err)
	}
	b := NewSegment(loop)
	b.CopyFrom(a)
	if b.Pos() != 12 {
		t.Fatalf("pos = %d", b.Pos())
	}
	var rs []Region
	if _, err := b.Process(12, 16, func(m, s, n int64) { rs = append(rs, Region{m, n}) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(rs, []Region{{24, 4}}) {
		t.Fatalf("emitted %v", rs)
	}
}

func TestCopyFromDifferentLoopPanics(t *testing.T) {
	a := NewSegment(compile(t, ddt.MustContiguous(4, ddt.Int), 1))
	b := NewSegment(compile(t, ddt.MustContiguous(8, ddt.Int), 1))
	defer func() {
		if recover() == nil {
			t.Fatal("CopyFrom across loops did not panic")
		}
	}()
	a.CopyFrom(b)
}

func TestEncodedSizeConstant(t *testing.T) {
	inner := ddt.MustVector(3, 1, 2, ddt.Int)
	outer := ddt.MustVector(4, 1, 8, inner)
	loop := compile(t, outer, 2)
	seg := NewSegment(loop)
	s0 := seg.EncodedSize()
	if _, err := seg.Process(0, loop.Size()/2, nil); err != nil {
		t.Fatal(err)
	}
	if seg.EncodedSize() != s0 {
		t.Fatalf("encoded size changed: %d -> %d", s0, seg.EncodedSize())
	}
	if s0 <= 0 {
		t.Fatalf("encoded size %d", s0)
	}
}

func TestCheckpointPositions(t *testing.T) {
	v := ddt.MustVector(64, 1, 2, ddt.Int) // 256B stream
	loop := compile(t, v, 1)
	cs, err := BuildCheckpoints(loop, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Count() != 4 {
		t.Fatalf("count = %d, want 4", cs.Count())
	}
	for i := 0; i < cs.Count(); i++ {
		if cs.Pos(i) != int64(i)*64 {
			t.Fatalf("checkpoint %d at %d", i, cs.Pos(i))
		}
	}
	if cs.Build.Checkpoints != 4 || cs.Build.BytesCloned != 4*cs.CheckpointSize() {
		t.Fatalf("build stats %+v", cs.Build)
	}
	if cs.NICBytes() != 4*cs.CheckpointSize() {
		t.Fatalf("nic bytes = %d", cs.NICBytes())
	}
}

func TestCheckpointIndex(t *testing.T) {
	loop := compile(t, ddt.MustVector(64, 1, 2, ddt.Int), 1)
	cs, err := BuildCheckpoints(loop, 100)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Count() != 3 { // 256B / 100B -> checkpoints at 0, 100, 200
		t.Fatalf("count = %d", cs.Count())
	}
	cases := []struct {
		off  int64
		want int
	}{{0, 0}, {-5, 0}, {99, 0}, {100, 1}, {199, 1}, {200, 2}, {255, 2}, {1000, 2}}
	for _, c := range cases {
		if got := cs.Index(c.off); got != c.want {
			t.Errorf("Index(%d) = %d, want %d", c.off, got, c.want)
		}
	}
}

func TestCheckpointIntervalLargerThanStream(t *testing.T) {
	loop := compile(t, ddt.MustContiguous(4, ddt.Int), 1)
	cs, err := BuildCheckpoints(loop, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if cs.Count() != 1 || cs.Pos(0) != 0 {
		t.Fatalf("count=%d pos=%d", cs.Count(), cs.Pos(0))
	}
}

func TestCheckpointInvalidInterval(t *testing.T) {
	loop := compile(t, ddt.MustContiguous(4, ddt.Int), 1)
	if _, err := BuildCheckpoints(loop, 0); err == nil {
		t.Fatal("interval 0 accepted")
	}
}

// TestCheckpointProcessingEquivalence: starting from any checkpoint and
// processing any later range gives the same bytes as a straight-line pass.
func TestCheckpointProcessingEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for iter := 0; iter < 100; iter++ {
		typ := ddt.RandomType(rng, 3)
		count := 1 + rng.Intn(3)
		loop := compile(t, typ, count)
		total := loop.Size()
		interval := 1 + rng.Int63n(total)
		cs, err := BuildCheckpoints(loop, interval)
		if err != nil {
			t.Fatal(err)
		}

		_, hi := typ.Footprint(count)
		src := make([]byte, hi)
		rng.Read(src)
		packed, _ := ddt.Pack(typ, count, src)
		want := make([]byte, hi)
		if err := ddt.Unpack(typ, count, packed, want); err != nil {
			t.Fatal(err)
		}

		// Process random disjoint chunks, each from its closest checkpoint.
		dst := make([]byte, hi)
		cuts := []int64{0, total}
		for i := 0; i < rng.Intn(5); i++ {
			cuts = append(cuts, rng.Int63n(total+1))
		}
		sortInt64s(cuts)
		for i := 0; i+1 < len(cuts); i++ {
			a, b := cuts[i], cuts[i+1]
			if a == b {
				continue
			}
			w := cs.Working(cs.Index(a))
			if w.Pos() > a {
				t.Fatalf("checkpoint ahead of chunk: pos=%d a=%d", w.Pos(), a)
			}
			if _, err := w.Process(a, b, func(m, s, n int64) {
				copy(dst[m:m+n], packed[s:s+n])
			}); err != nil {
				t.Fatalf("iter %d: %v", iter, err)
			}
		}
		if !bytes.Equal(dst, want) {
			t.Fatalf("iter %d: checkpointed unpack differs (interval=%d)\n%s",
				iter, interval, typ.Describe())
		}
	}
}

func TestWorkingDoesNotMutateMaster(t *testing.T) {
	loop := compile(t, ddt.MustVector(64, 1, 2, ddt.Int), 1)
	cs, err := BuildCheckpoints(loop, 64)
	if err != nil {
		t.Fatal(err)
	}
	w := cs.Working(1)
	if _, err := w.Process(w.Pos(), 200, nil); err != nil {
		t.Fatal(err)
	}
	if cs.Master(1).Pos() != 64 {
		t.Fatalf("master mutated: pos=%d", cs.Master(1).Pos())
	}
}

func TestDataloopEncodedSizePositive(t *testing.T) {
	ib := ddt.MustIndexedBlock(2, []int{0, 8, 20}, ddt.Int)
	loop := compile(t, ib, 1)
	if loop.EncodedSize() < 56+3*8 {
		t.Fatalf("encoded size = %d", loop.EncodedSize())
	}
}

func TestProcessStatsAdd(t *testing.T) {
	a := ProcessStats{CatchupBlocks: 1, CatchupBytes: 2, EmitRegions: 3, EmitBytes: 4}
	b := ProcessStats{DidReset: true, CatchupBlocks: 10, CatchupBytes: 20, EmitRegions: 30, EmitBytes: 40}
	a.Add(b)
	if !a.DidReset || a.CatchupBlocks != 11 || a.CatchupBytes != 22 || a.EmitRegions != 33 || a.EmitBytes != 44 {
		t.Fatalf("sum = %+v", a)
	}
}

func TestSegmentExhaustionError(t *testing.T) {
	loop := compile(t, ddt.MustContiguous(4, ddt.Int), 1)
	seg := NewSegment(loop)
	if _, err := seg.Process(0, 16, nil); err != nil {
		t.Fatal(err)
	}
	if !seg.Finished() {
		t.Fatal("segment should be finished")
	}
	// Re-processing from the start must work after an explicit reset via
	// backward range.
	st, err := seg.Process(0, 8, nil)
	if err != nil || !st.DidReset {
		t.Fatalf("restart: %v, stats %+v", err, st)
	}
}
