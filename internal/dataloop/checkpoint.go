package dataloop

import "fmt"

// BuildStats records the host-side cost of creating a checkpoint set: the
// paper's "checkpoint creation cost" that Fig. 18 amortizes over datatype
// reuses.
type BuildStats struct {
	// BlocksWalked counts leaf regions the host CPU walked to advance the
	// segment across the whole stream.
	BlocksWalked int64
	// BytesCloned counts segment-state bytes copied for the snapshots.
	BytesCloned int64
	// Checkpoints is the number of snapshots taken.
	Checkpoints int
}

// CheckpointSet holds the segment snapshots of a datatype taken every
// Interval stream bytes (the paper's Δr). Master copies are kept so RW-CP
// can revert a checkpoint whose state ran ahead of an out-of-order packet
// (Sec. 3.2.4).
type CheckpointSet struct {
	Interval int64
	Total    int64
	masters  []*Segment
	Build    BuildStats
}

// BuildCheckpoints processes the datatype on the host and snapshots the
// segment every interval bytes: checkpoint i is positioned at stream offset
// i*interval. An interval >= the stream size yields the single initial
// checkpoint.
func BuildCheckpoints(loop *Dataloop, interval int64) (*CheckpointSet, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("dataloop: checkpoint interval %d", interval)
	}
	total := loop.Size()
	cs := &CheckpointSet{Interval: interval, Total: total}
	seg := NewSegment(loop)
	count := int((total + interval - 1) / interval)
	arena := newSegmentArena(count, loop.Depth())
	cs.masters = make([]*Segment, 0, count)
	for off := int64(0); off < total; off += interval {
		st, err := seg.Process(seg.Pos(), off, nil)
		if err != nil {
			return nil, err
		}
		cs.Build.BlocksWalked += st.CatchupBlocks + st.EmitRegions
		snap := arena.clone(seg)
		cs.Build.BytesCloned += snap.EncodedSize()
		cs.masters = append(cs.masters, snap)
	}
	cs.Build.Checkpoints = len(cs.masters)
	return cs, nil
}

// Count returns the number of checkpoints.
func (cs *CheckpointSet) Count() int { return len(cs.masters) }

// CheckpointSize returns the NIC-memory bytes one checkpoint occupies.
func (cs *CheckpointSet) CheckpointSize() int64 {
	if len(cs.masters) == 0 {
		return 0
	}
	return cs.masters[0].EncodedSize()
}

// NICBytes returns the NIC memory the checkpoint set occupies (all master
// snapshots).
func (cs *CheckpointSet) NICBytes() int64 {
	return int64(cs.Count()) * cs.CheckpointSize()
}

// Index returns the index of the closest checkpoint at or before the given
// stream offset.
func (cs *CheckpointSet) Index(streamOff int64) int {
	if streamOff <= 0 {
		return 0
	}
	i := int(streamOff / cs.Interval)
	if i >= len(cs.masters) {
		i = len(cs.masters) - 1
	}
	return i
}

// Master returns checkpoint i's master snapshot. Callers must not mutate
// it; use Working or CopyTo for processing.
func (cs *CheckpointSet) Master(i int) *Segment { return cs.masters[i] }

// Working returns a mutable copy of checkpoint i, the RO-CP "local copy"
// made by every handler before processing.
func (cs *CheckpointSet) Working(i int) *Segment { return cs.masters[i].Clone() }

// CloneMasters bulk-clones every master snapshot through one segment arena:
// the persistent working set an execution context starts from. The whole
// set costs two slab allocations instead of two heap objects per
// checkpoint, and each returned segment behaves exactly like
// Master(i).Clone().
func (cs *CheckpointSet) CloneMasters() []*Segment {
	out := make([]*Segment, len(cs.masters))
	if len(cs.masters) == 0 {
		return out
	}
	arena := newSegmentArena(len(cs.masters), cs.masters[0].Loop().Depth())
	for i, m := range cs.masters {
		out[i] = arena.clone(m)
	}
	return out
}

// Pos returns the stream position of checkpoint i.
func (cs *CheckpointSet) Pos(i int) int64 { return cs.masters[i].Pos() }
