package dataloop

import (
	"errors"
	"fmt"

	"spinddt/internal/ddt"
)

// ErrEmptyType reports a datatype with zero packed size, which has no
// dataloop representation (there is nothing to process).
var ErrEmptyType = errors.New("dataloop: datatype has zero size")

// Compile translates an MPI derived datatype into its dataloop tree,
// applying the classic MPITypes optimizations: contiguous subtypes collapse
// into leaf elements, and single-use wrappers disappear. The compiled
// loop's Size always equals the type's packed size.
func Compile(t *ddt.Type) (*Dataloop, error) {
	if t.Size() == 0 {
		return nil, ErrEmptyType
	}
	loop := loopOf(t)
	if loop == nil {
		return nil, ErrEmptyType
	}
	if loop.Size() != t.Size() {
		return nil, fmt.Errorf("dataloop: compiled size %d != type size %d (internal bug)",
			loop.Size(), t.Size())
	}
	return loop, nil
}

// CompileCount compiles count consecutive elements of the type, the form a
// receive of count elements uses.
func CompileCount(t *ddt.Type, count int) (*Dataloop, error) {
	if count <= 0 {
		return nil, fmt.Errorf("dataloop: count %d", count)
	}
	if count == 1 {
		return Compile(t)
	}
	if t.Size() == 0 {
		return nil, ErrEmptyType
	}
	// Dense elements collapse into a single leaf run.
	if isDense(t) {
		l := &Dataloop{Kind: Contig, Count: int64(count) * denseUnit(t).n, ElSize: denseUnit(t).size, ElExtent: denseUnit(t).size}
		l.finalize()
		return l, nil
	}
	child := loopOf(t)
	if child == nil {
		return nil, ErrEmptyType
	}
	l := &Dataloop{
		Kind: Contig, Count: int64(count),
		Child: child, ElSize: t.Size(), ElExtent: t.Extent(),
	}
	l.finalize()
	return l, nil
}

// isDense reports whether count elements of the type occupy one contiguous
// run with no holes and no spill (so the whole thing is a leaf).
func isDense(t *ddt.Type) bool {
	if !t.Contiguous() {
		return false
	}
	lo, hi := t.TrueBounds()
	return lo == 0 && hi == t.Extent()
}

type unit struct{ n, size int64 }

func denseUnit(t *ddt.Type) unit { return unit{n: 1, size: t.Size()} }

// loopOf builds the dataloop for one element of t. It returns nil for
// zero-size subtrees, which callers prune.
func loopOf(t *ddt.Type) *Dataloop {
	if t.Size() == 0 {
		return nil
	}
	// MPITypes leaf optimization: any contiguous subtype is an elementary
	// unit from the processor's point of view.
	if isDense(t) {
		l := &Dataloop{Kind: Contig, Count: 1, ElSize: t.Size(), ElExtent: t.Size()}
		l.finalize()
		return l
	}

	switch t.Kind() {
	case ddt.KindContiguous:
		return buildContig(int64(t.Count()), t.Children()[0])

	case ddt.KindVector, ddt.KindHVector:
		base := t.Children()[0]
		if isDense(base) {
			l := &Dataloop{
				Kind: Vector, Count: int64(t.Count()), BlockLen: int64(t.BlockLen()),
				Stride: t.StrideBytes(), ElSize: base.Size(), ElExtent: base.Extent(),
			}
			l.finalize()
			return l
		}
		child := loopOf(base)
		if child == nil {
			return nil
		}
		l := &Dataloop{
			Kind: Vector, Count: int64(t.Count()), BlockLen: int64(t.BlockLen()),
			Stride: t.StrideBytes(), Child: child,
			ElSize: base.Size(), ElExtent: base.Extent(),
		}
		l.finalize()
		return l

	case ddt.KindIndexedBlock, ddt.KindHIndexedBlock:
		base := t.Children()[0]
		offsets := append([]int64(nil), t.Displacements()...)
		l := &Dataloop{
			Kind: BlockIndexed, BlockLen: int64(t.BlockLen()), Offsets: offsets,
			ElSize: base.Size(), ElExtent: base.Extent(),
		}
		if !isDense(base) {
			l.Child = loopOf(base)
			if l.Child == nil {
				return nil
			}
		}
		l.finalize()
		return l

	case ddt.KindIndexed, ddt.KindHIndexed:
		base := t.Children()[0]
		var offsets []int64
		var lens []int64
		for i, bl := range t.BlockLens() {
			if bl == 0 {
				continue // prune empty blocks
			}
			offsets = append(offsets, t.Displacements()[i])
			lens = append(lens, int64(bl))
		}
		l := &Dataloop{
			Kind: Indexed, BlockLens: lens, Offsets: offsets,
			ElSize: base.Size(), ElExtent: base.Extent(),
		}
		if !isDense(base) {
			l.Child = loopOf(base)
			if l.Child == nil {
				return nil
			}
		}
		l.finalize()
		return l

	case ddt.KindStruct:
		var offsets, lens, elSizes, elExtents []int64
		var children []*Dataloop
		for i, member := range t.Children() {
			bl := int64(t.BlockLens()[i])
			if bl == 0 || member.Size() == 0 {
				continue // prune empty members
			}
			var child *Dataloop
			if !isDense(member) {
				child = loopOf(member)
				if child == nil {
					continue
				}
			}
			offsets = append(offsets, t.Displacements()[i])
			lens = append(lens, bl)
			elSizes = append(elSizes, member.Size())
			elExtents = append(elExtents, member.Extent())
			children = append(children, child)
		}
		// A Struct node needs a Children slice to be interior even when some
		// members are leaves; leaf members keep a nil child, which the
		// segment treats as raw bytes — but mixed nil/non-nil children would
		// break Leaf(). Wrap leaf members in trivial contig leaves instead.
		for i, c := range children {
			if c == nil {
				leaf := &Dataloop{Kind: Contig, Count: 1, ElSize: elSizes[i], ElExtent: elSizes[i]}
				leaf.finalize()
				children[i] = leaf
			}
		}
		l := &Dataloop{
			Kind: Struct, BlockLens: lens, Offsets: offsets,
			Children: children, ElSizes: elSizes, ElExtents: elExtents,
		}
		l.finalize()
		return l

	case ddt.KindSubarray:
		return buildSubarray(t)

	case ddt.KindResized:
		return loopOf(t.Children()[0])

	default: // elementary handled by the isDense fast path above
		l := &Dataloop{Kind: Contig, Count: 1, ElSize: t.Size(), ElExtent: t.Size()}
		l.finalize()
		return l
	}
}

func buildContig(count int64, base *ddt.Type) *Dataloop {
	if isDense(base) {
		l := &Dataloop{Kind: Contig, Count: count, ElSize: base.Size(), ElExtent: base.Size()}
		l.finalize()
		return l
	}
	child := loopOf(base)
	if child == nil {
		return nil
	}
	l := &Dataloop{
		Kind: Contig, Count: count, Child: child,
		ElSize: base.Size(), ElExtent: base.Extent(),
	}
	l.finalize()
	return l
}

// buildSubarray lowers a row-major n-dimensional subarray into nested
// vector dataloops with an initial offset, the standard MPITypes lowering.
func buildSubarray(t *ddt.Type) *Dataloop {
	sizes, subSizes, starts := t.SubarrayDims()
	base := t.Children()[0]
	n := len(sizes)

	strides := make([]int64, n) // element strides per dimension
	strides[n-1] = 1
	for d := n - 2; d >= 0; d-- {
		strides[d] = strides[d+1] * int64(sizes[d+1])
	}

	// Innermost dimension: a run of consecutive base elements.
	inner := buildContig(int64(subSizes[n-1]), base)
	if inner == nil {
		return nil
	}
	// Outer dimensions become vectors of single-element blocks.
	for d := n - 2; d >= 0; d-- {
		if subSizes[d] == 0 {
			return nil
		}
		v := &Dataloop{
			Kind: Vector, Count: int64(subSizes[d]), BlockLen: 1,
			Stride: strides[d] * base.Extent(),
			Child:  inner, ElSize: inner.Size(), ElExtent: strides[d] * base.Extent(),
		}
		v.finalize()
		inner = v
	}

	shift := int64(0)
	for d := 0; d < n; d++ {
		shift += int64(starts[d]) * strides[d] * base.Extent()
	}
	if shift == 0 {
		return inner
	}
	wrap := &Dataloop{
		Kind: BlockIndexed, BlockLen: 1, Offsets: []int64{shift},
		Child: inner, ElSize: inner.Size(), ElExtent: inner.Size(),
	}
	wrap.finalize()
	return wrap
}
