package pcie

import (
	"math"
	"testing"

	"spinddt/internal/sim"
)

func TestBandwidth(t *testing.T) {
	c := DefaultConfig()
	// Gen4 x32: 32 lanes * 16 GT/s / 8 = 64 GB/s raw, * 128/130 ~ 63.0 GB/s.
	want := 64e9 * 128.0 / 130.0
	if got := c.Bandwidth(); math.Abs(got-want) > 1 {
		t.Fatalf("bandwidth = %v, want %v", got, want)
	}
}

func TestWriteWireBytes(t *testing.T) {
	c := DefaultConfig()
	if got := c.WriteWireBytes(4); got != 30 {
		t.Fatalf("4B write uses %d wire bytes", got)
	}
	if got := c.WriteWireBytes(0); got != 26 {
		t.Fatalf("0B write uses %d wire bytes", got)
	}
}

func TestWriteTimeScalesWithPayload(t *testing.T) {
	c := DefaultConfig()
	small := c.WriteTime(4)
	big := c.WriteTime(2048)
	if small <= 0 || big <= small {
		t.Fatalf("write times: small=%v big=%v", small, big)
	}
	// 2 KiB + 26 B at ~63 GB/s is ~32.9 ns.
	if big < 30*sim.Nanosecond || big > 36*sim.Nanosecond {
		t.Fatalf("2KiB write time = %v", big)
	}
}

func TestSmallWritesAreInefficient(t *testing.T) {
	c := DefaultConfig()
	// Moving 2048 B as 512 4-byte writes must cost far more wire time than
	// one 2048 B write — the effect the paper blames for the poor offload
	// performance at γ=512 (Sec. 5.3).
	one := c.WriteTime(2048)
	many := sim.Time(0)
	for i := 0; i < 512; i++ {
		many += c.WriteTime(4)
	}
	if many < 5*one {
		t.Fatalf("512 tiny writes (%v) should cost >5x one bulk write (%v)", many, one)
	}
}

func TestReadLatencyDefault(t *testing.T) {
	c := DefaultConfig()
	if c.ReadLatency != 500*sim.Nanosecond {
		t.Fatalf("read latency = %v", c.ReadLatency)
	}
}

func TestByteTimeNoOverhead(t *testing.T) {
	c := DefaultConfig()
	if c.ByteTime(0) != 0 {
		t.Fatal("0 bytes must take 0 time")
	}
	if c.ByteTime(1024) >= c.WriteTime(1024) {
		t.Fatal("bulk byte time must be below TLP write time")
	}
}
