// Package pcie models the host interface of the simulated NIC: a PCIe
// Gen4 link with 128b/130b encoding, per-TLP header overhead on DMA writes,
// and a fixed round-trip latency for DMA reads (the paper models iovec
// fetches as 500 ns PCIe reads).
package pcie

import "spinddt/internal/sim"

// Config describes the PCIe link between NIC and host.
type Config struct {
	// Lanes is the link width (the paper simulates a x32 Gen4 interface).
	Lanes int
	// GTPerLane is the raw signalling rate per lane in GT/s (16 for Gen4).
	GTPerLane float64
	// EncodingNum/EncodingDen express the line coding (128/130 for Gen4).
	EncodingNum, EncodingDen int64
	// TLPHeaderBytes is the per-transaction overhead added to every DMA
	// write (TLP header + framing).
	TLPHeaderBytes int64
	// ReadLatency is the round-trip latency of a DMA read from host memory.
	ReadLatency sim.Time
}

// DefaultConfig returns the paper's host interface: PCIe Gen4 x32 with
// 128b/130b encoding and 500 ns read latency.
func DefaultConfig() Config {
	return Config{
		Lanes:          32,
		GTPerLane:      16,
		EncodingNum:    128,
		EncodingDen:    130,
		TLPHeaderBytes: 26,
		ReadLatency:    500 * sim.Nanosecond,
	}
}

// Bandwidth returns the effective payload bandwidth in bytes/second after
// line coding.
func (c Config) Bandwidth() float64 {
	raw := float64(c.Lanes) * c.GTPerLane * 1e9 / 8 // bytes/s before coding
	return raw * float64(c.EncodingNum) / float64(c.EncodingDen)
}

// NotifyLatency returns the host-notification latency of the link: the
// round trip for the host to observe a NIC-side completion (the paper
// models host-visible NIC reads as ReadLatency PCIe round trips). It is
// the conservative-PDES lookahead of a NIC domain toward its host domain
// in the sharded engine (sim.Shard).
func (c Config) NotifyLatency() sim.Time { return c.ReadLatency }

// WriteWireBytes returns the wire bytes consumed by a DMA write of payload
// bytes, including the TLP overhead.
func (c Config) WriteWireBytes(payload int64) int64 {
	return payload + c.TLPHeaderBytes
}

// WriteTime returns the link occupancy of a DMA write of payload bytes.
func (c Config) WriteTime(payload int64) sim.Time {
	return sim.FromSeconds(float64(c.WriteWireBytes(payload)) / c.Bandwidth())
}

// ByteTime returns the link occupancy of n payload bytes without TLP
// overhead (bulk transfers that the model treats as a single transaction
// stream, e.g. the non-processing RDMA path).
func (c Config) ByteTime(n int64) sim.Time {
	return sim.FromSeconds(float64(n) / c.Bandwidth())
}

// Link is the per-simulation form of a Config with the derived bandwidth
// precomputed, for the DMA completion hot path: one write completion is
// scheduled per DMA burst, and recomputing the line-coding chain there
// costs more than the division itself. The time formulas are identical to
// Config's, so results are bit-equal.
type Link struct {
	Config
	bw float64 // effective payload bandwidth, bytes/s
}

// NewLink precomputes the derived rates of c.
func NewLink(c Config) Link { return Link{Config: c, bw: c.Bandwidth()} }

// BurstTime returns the link occupancy of a burst of reqs DMA writes
// moving payload bytes in total, including per-TLP overhead.
func (l Link) BurstTime(reqs, payload int64) sim.Time {
	return sim.FromSeconds(float64(payload+reqs*l.TLPHeaderBytes) / l.bw)
}
