package hostcpu

import (
	"testing"

	"spinddt/internal/ddt"
	"spinddt/internal/sim"
)

func TestUnpackCostContiguous(t *testing.T) {
	cfg := DefaultConfig()
	typ := ddt.MustContiguous(1024, ddt.Double) // 8 KiB, one region
	c := UnpackCost(cfg, typ, 1)
	if c.Blocks != 1 {
		t.Fatalf("blocks = %d", c.Blocks)
	}
	if c.DestLines != 8192/64 {
		t.Fatalf("dest lines = %d", c.DestLines)
	}
	// Traffic: 8 KiB read + 8 KiB write-allocate.
	if c.TrafficBytes != 2*8192 {
		t.Fatalf("traffic = %d", c.TrafficBytes)
	}
	if c.Time <= 0 {
		t.Fatal("zero time")
	}
}

func TestUnpackCostStridedSharesLines(t *testing.T) {
	cfg := DefaultConfig()
	// 4 B blocks with 8 B stride: 8 blocks per 64 B destination line.
	typ := ddt.MustVector(1024, 1, 2, ddt.Int)
	c := UnpackCost(cfg, typ, 1)
	if c.Blocks != 1024 {
		t.Fatalf("blocks = %d", c.Blocks)
	}
	// Destination spans 2x the data: 8 KiB span -> 128 lines.
	if c.DestLines != 128 {
		t.Fatalf("dest lines = %d, want 128", c.DestLines)
	}
}

func TestUnpackCostSparseBlocks(t *testing.T) {
	cfg := DefaultConfig()
	// 4 B blocks, 256 B apart: every block its own line.
	typ := ddt.MustVector(100, 1, 64, ddt.Int)
	c := UnpackCost(cfg, typ, 1)
	if c.DestLines != 100 {
		t.Fatalf("dest lines = %d, want 100", c.DestLines)
	}
}

func TestSmallBlocksCostMoreTimePerByte(t *testing.T) {
	cfg := DefaultConfig()
	bulk := UnpackCost(cfg, ddt.MustVector(64, 512, 1024, ddt.Int), 1) // 2 KiB blocks
	tiny := UnpackCost(cfg, ddt.MustVector(32768, 1, 2, ddt.Int), 1)   // 4 B blocks
	if bulk.Blocks*512 != tiny.Blocks/2 && bulk.TrafficBytes <= 0 {
		t.Fatal("setup")
	}
	perByteBulk := float64(bulk.Time) / float64(64*512*4)
	perByteTiny := float64(tiny.Time) / float64(32768*4)
	if perByteTiny <= perByteBulk {
		t.Fatalf("tiny blocks (%.3f ps/B) should cost more than bulk (%.3f ps/B)",
			perByteTiny, perByteBulk)
	}
}

func TestPackCostCheaperThanUnpack(t *testing.T) {
	cfg := DefaultConfig()
	typ := ddt.MustVector(4096, 4, 8, ddt.Int)
	up := UnpackCost(cfg, typ, 1)
	pk := PackCost(cfg, typ, 1)
	if pk.Time >= up.Time {
		t.Fatalf("pack (%v) should be cheaper than unpack (%v): no write-allocate on stream",
			pk.Time, up.Time)
	}
}

func TestWalkAndCopyCost(t *testing.T) {
	cfg := DefaultConfig()
	if WalkCost(cfg, 1000) != 500*sim.Nanosecond {
		t.Fatalf("walk cost = %v", WalkCost(cfg, 1000))
	}
	if CopyCost(cfg, 612) != sim.FromNanoseconds(153) {
		t.Fatalf("copy cost = %v", CopyCost(cfg, 612))
	}
}

func TestUnpackCostScalesWithCount(t *testing.T) {
	cfg := DefaultConfig()
	typ := ddt.MustVector(128, 4, 8, ddt.Int)
	one := UnpackCost(cfg, typ, 1)
	four := UnpackCost(cfg, typ, 4)
	// A vector's upper bound coincides with its last block, so consecutive
	// elements merge one block pair at each boundary: 4*128 - 3.
	if four.Blocks != 4*one.Blocks-3 {
		t.Fatalf("blocks: %d, want %d", four.Blocks, 4*one.Blocks-3)
	}
	if four.Time <= 3*one.Time {
		t.Fatalf("time did not scale: %v vs %v", four.Time, one.Time)
	}
}
