// Package hostcpu models the host-based unpack baseline of the paper's
// evaluation: the MPITypes MPIT_Type_memcpy function profiled on an Intel
// i7-4770 with cold caches (Sec. 5.1). The model reproduces the two
// observables the paper uses: the unpack time (the "Host" series of Fig. 8
// and the T baselines of Fig. 16) and the main-memory traffic the unpack
// causes (Fig. 17).
package hostcpu

import (
	"spinddt/internal/ddt"
	"spinddt/internal/sim"
)

// Config is the host CPU/memory model.
type Config struct {
	// InterpPerBlock is the datatype-interpreter overhead per contiguous
	// region (dataloop navigation, loop control).
	InterpPerBlock sim.Time
	// WalkPerBlock is the cheaper per-region cost of walking a datatype
	// without copying (used when the host builds checkpoints).
	WalkPerBlock sim.Time
	// CopyBandwidth is the effective cold-cache copy bandwidth in bytes/s,
	// applied to all memory traffic the unpack generates.
	CopyBandwidth float64
	// ColdCaches enforces the paper's microbenchmark methodology: every
	// unpack runs from cold caches (Sec. 5.3), so the cache tier below is
	// ignored. Disable it to model unpacks inside a live application loop
	// (the Fig. 19 FFT2D study), where small working sets stay cached.
	ColdCaches bool
	// CachedBandwidth applies instead of CopyBandwidth when ColdCaches is
	// false and the unpack working set (packed stream plus touched
	// destination lines) fits under CacheFootprintLimit: the
	// write-allocate and write-back traffic then stays on-chip.
	CachedBandwidth float64
	// CacheFootprintLimit is the working-set size below which the unpack
	// runs at CachedBandwidth.
	CacheFootprintLimit int64
	// CacheLine is the cache line size in bytes.
	CacheLine int64
	// MemCopyPerByte is the CPU-side cost of touching one byte in cache
	// (segment snapshots, small copies) in nanoseconds per byte.
	MemCopyPerByte float64
}

// DefaultConfig returns the i7-4770-like profile used throughout the
// experiments.
func DefaultConfig() Config {
	return Config{
		InterpPerBlock:      sim.Time(800), // 0.8 ns: a tight leaf-copy loop
		WalkPerBlock:        sim.Time(500), // 0.5 ns: navigation without copying
		ColdCaches:          true,
		CopyBandwidth:       16e9,
		CachedBandwidth:     40e9,
		CacheFootprintLimit: 1 << 20,
		CacheLine:           64,
		MemCopyPerByte:      0.25,
	}
}

// Cost is the modeled cost of one host-side unpack (or pack).
type Cost struct {
	// Time is the CPU time of the operation.
	Time sim.Time
	// Blocks is the number of contiguous regions processed.
	Blocks int64
	// DestLines is the number of distinct destination cache lines touched.
	DestLines int64
	// TrafficBytes is the main-memory volume of the operation as the paper
	// counts it for Fig. 17: LLC miss volume = packed-stream reads plus
	// destination write-allocate fills.
	TrafficBytes int64
	// TimeBytes is the memory volume that costs time: reads, write-allocate
	// fills and write-backs.
	TimeBytes int64
}

// UnpackCost models unpacking count elements of the datatype from a packed
// stream, cold caches.
func UnpackCost(cfg Config, typ *ddt.Type, count int) Cost {
	var c Cost
	m := typ.Size() * int64(count)
	line := cfg.CacheLine
	lastLine := int64(-1)
	typ.ForEachBlock(count, func(off, size int64) {
		c.Blocks++
		first := off / line
		last := (off + size - 1) / line
		if first == lastLine {
			first++ // line shared with the previous region: already counted
		}
		if last >= first {
			c.DestLines += last - first + 1
			lastLine = last
		}
	})
	// Reads: the packed stream; write-allocate: every destination line is
	// fetched before being partially overwritten; write-backs drain the
	// same lines.
	destBytes := c.DestLines * line
	c.TrafficBytes = m + destBytes
	c.TimeBytes = m + 2*destBytes
	c.Time = sim.Time(c.Blocks)*cfg.InterpPerBlock +
		sim.FromSeconds(float64(c.TimeBytes)/cfg.bandwidthFor(m+destBytes))
	return c
}

// bandwidthFor returns the copy bandwidth tier for a working set of the
// given size.
func (cfg Config) bandwidthFor(workingSet int64) float64 {
	if !cfg.ColdCaches && cfg.CacheFootprintLimit > 0 &&
		workingSet <= cfg.CacheFootprintLimit &&
		cfg.CachedBandwidth > cfg.CopyBandwidth {
		return cfg.CachedBandwidth
	}
	return cfg.CopyBandwidth
}

// PackCost models the sender-side pack of count elements into a contiguous
// buffer (the left tile of the paper's Fig. 4). The traffic is symmetric to
// unpack with source reads instead of destination fills.
func PackCost(cfg Config, typ *ddt.Type, count int) Cost {
	c := UnpackCost(cfg, typ, count)
	// Packing reads the scattered source (same line count) and writes the
	// stream; the stream is written sequentially, full lines, so no
	// write-allocate cost on it.
	m := typ.Size() * int64(count)
	c.TrafficBytes = c.DestLines*cfg.CacheLine + m
	c.TimeBytes = c.DestLines*cfg.CacheLine + m
	c.Time = sim.Time(c.Blocks)*cfg.InterpPerBlock +
		sim.FromSeconds(float64(c.TimeBytes)/cfg.bandwidthFor(c.TimeBytes))
	return c
}

// WalkCost models advancing a datatype's processing state across its whole
// stream without copying data (checkpoint construction).
func WalkCost(cfg Config, blocks int64) sim.Time {
	return sim.Time(blocks) * cfg.WalkPerBlock
}

// CopyCost models a small in-cache copy of n bytes (segment snapshots).
func CopyCost(cfg Config, n int64) sim.Time {
	return sim.FromNanoseconds(cfg.MemCopyPerByte * float64(n))
}
