package pulp

import "testing"

func TestDMABandwidthShape(t *testing.T) {
	c := DefaultConfig()
	// Fig. 9c: ~192 Gbit/s at 256 B blocks, above line rate beyond.
	at256 := c.DMABandwidthGbps(256)
	if at256 < 180 || at256 > 210 {
		t.Fatalf("DMA bandwidth at 256B = %.1f Gbit/s, want ~192", at256)
	}
	for _, b := range []int64{512, 1024, 4096, 131072} {
		if bw := c.DMABandwidthGbps(b); bw < c.LineRateGbps {
			t.Fatalf("DMA bandwidth at %dB = %.1f Gbit/s, want above line rate", b, bw)
		}
	}
	// Monotone in block size.
	last := 0.0
	for _, b := range []int64{256, 512, 1024, 2048, 8192, 32768, 131072} {
		bw := c.DMABandwidthGbps(b)
		if bw <= last {
			t.Fatalf("bandwidth not monotone at %dB", b)
		}
		last = bw
	}
	if c.DMABandwidthGbps(0) != 0 {
		t.Fatal("zero block")
	}
}

func TestIPCShape(t *testing.T) {
	c := DefaultConfig()
	// Fig. 11: medians between ~0.14 (32B) and ~0.26 (16 KiB), monotone.
	lo := c.IPC(32)
	hi := c.IPC(16384)
	if lo < 0.1 || lo > 0.18 {
		t.Fatalf("IPC(32B) = %.3f, want ~0.14", lo)
	}
	if hi < 0.24 || hi > 0.28 {
		t.Fatalf("IPC(16KiB) = %.3f, want ~0.26", hi)
	}
	last := 0.0
	for _, b := range []int64{32, 64, 128, 256, 1024, 4096, 16384} {
		v := c.IPC(b)
		if v <= last {
			t.Fatalf("IPC not monotone at %dB", b)
		}
		last = v
	}
}

func TestRWCPKernelCrossover(t *testing.T) {
	c := DefaultConfig()
	// Fig. 10: PULP slower than ARM below 256 B, competitive above.
	small := c.RWCPKernel(1<<20, 32, 2048, 4)
	if small.PulpGbps >= small.ArmGbps {
		t.Fatalf("PULP (%.0f) should trail ARM (%.0f) at 32B blocks",
			small.PulpGbps, small.ArmGbps)
	}
	big := c.RWCPKernel(1<<20, 4096, 2048, 4)
	if big.PulpGbps < 0.8*big.ArmGbps {
		t.Fatalf("PULP (%.0f) should be competitive with ARM (%.0f) at 4KiB blocks",
			big.PulpGbps, big.ArmGbps)
	}
}

func TestRWCPKernelExceedsLineRateWhenPreloaded(t *testing.T) {
	c := DefaultConfig()
	// Packets are preloaded in L2: large-block throughput exceeds the
	// 200 Gbit/s line rate (Sec. 4.3.2).
	p := c.RWCPKernel(1<<20, 16384, 2048, 4)
	if p.PulpGbps < c.LineRateGbps {
		t.Fatalf("preloaded PULP throughput %.0f Gbit/s, want above line rate", p.PulpGbps)
	}
	// And PULP reaches line rate from 256B blocks up.
	q := c.RWCPKernel(1<<20, 256, 2048, 4)
	if q.PulpGbps < c.LineRateGbps {
		t.Fatalf("PULP at 256B = %.0f Gbit/s, want >= line rate", q.PulpGbps)
	}
}

func TestRWCPKernelBalancedAssignment(t *testing.T) {
	c := DefaultConfig()
	// 512 packets, Δp=4 -> 128 sequences over 32 cores: 16 packets each.
	p := c.RWCPKernel(1<<20, 2048, 2048, 4)
	perPkt := c.PacketTimePULP(2048, 2048)
	wantGbps := float64(1<<20) * 8 / (16 * perPkt.Seconds()) / 1e9
	if diff := p.PulpGbps/wantGbps - 1; diff > 0.01 || diff < -0.01 {
		t.Fatalf("throughput %.1f, want %.1f (balanced static assignment)", p.PulpGbps, wantGbps)
	}
}

func TestCores(t *testing.T) {
	if DefaultConfig().Cores() != 32 {
		t.Fatalf("cores = %d", DefaultConfig().Cores())
	}
}

func TestPublishedArea(t *testing.T) {
	a := PublishedArea()
	if a.TotalMM2 != 23.5 || a.TotalMGE != 100 || a.PowerWatts != 6 {
		t.Fatalf("published constants changed: %+v", a)
	}
	if a.ClusterPercent+a.L2Percent+a.InterconnPercent != 100 {
		t.Fatalf("area breakdown does not sum to 100%%: %+v", a)
	}
}
