// Package pulp models the paper's hardware prototype of sPIN (Sec. 4): a
// PULP multicluster with 4 clusters x 8 RISC-V cores @1 GHz, per-cluster L1
// scratchpads with cluster DMAs, a two-bank L2, and 256-bit interconnects
// sized for a 200 Gbit/s line rate. It substitutes a calibrated cycle-level
// analytic model for the paper's QuestaSim RTL simulation, reproducing the
// three measurements of Sec. 4.3: DMA bandwidth vs block size (Fig. 9c),
// RW-CP datatype-processing throughput vs the gem5 ARM setup (Fig. 10) and
// the handlers' instructions-per-cycle (Fig. 11). The silicon-area and
// power figures of Sec. 4.4 are reported as published constants — they
// come from a 22 nm synthesis run that cannot be re-derived in software.
package pulp

import (
	"spinddt/internal/sim"
)

// Config describes the PULP accelerator.
type Config struct {
	// Clusters and CoresPerCluster give the 4x8 RV32 core array.
	Clusters        int
	CoresPerCluster int
	// ClockHz is the core and interconnect clock (1 GHz in 22 nm FDSOI).
	ClockHz float64
	// ClusterDMABytesPerSec is one cluster DMA's bandwidth (64 bit/cycle).
	ClusterDMABytesPerSec float64
	// DMASetup is the per-burst programming overhead.
	DMASetup sim.Time
	// LineRateGbps is the NIC line rate the accelerator must sustain.
	LineRateGbps float64

	// HandlerInstrPerBlock is the RW-CP handler's instruction count per
	// contiguous region.
	HandlerInstrPerBlock float64
	// RuntimeOverhead is the per-packet runtime cost (HER dispatch, segment
	// bookkeeping) on a PULP core.
	RuntimeOverhead sim.Time
	// IPCMax is the asymptotic handler IPC with no L2 contention; IPCKnee
	// is the block size (bytes) at which contention halves it.
	IPCMax  float64
	IPCKnee float64

	// ARMPerPacket and ARMPerBlock parameterize the gem5 Cortex-A15
	// comparator of Fig. 10.
	ARMPerPacket sim.Time
	ARMPerBlock  sim.Time
}

// DefaultConfig returns the paper's configuration.
func DefaultConfig() Config {
	return Config{
		Clusters:              4,
		CoresPerCluster:       8,
		ClockHz:               1e9,
		ClusterDMABytesPerSec: 8e9, // 64 bit/cycle @1 GHz
		DMASetup:              10 * sim.Nanosecond,
		LineRateGbps:          200,
		HandlerInstrPerBlock:  30,
		RuntimeOverhead:       600 * sim.Nanosecond,
		IPCMax:                0.27,
		IPCKnee:               30,
		ARMPerPacket:          700 * sim.Nanosecond,
		ARMPerBlock:           76 * sim.Nanosecond,
	}
}

// Cores returns the total core count.
func (c Config) Cores() int { return c.Clusters * c.CoresPerCluster }

// DMABandwidthGbps models the Fig. 9c benchmark: every core stream moves
// blocks L2 -> L1 -> PCIe with per-burst setup overhead; the four cluster
// DMAs operate in parallel.
func (c Config) DMABandwidthGbps(blockBytes int64) float64 {
	if blockBytes <= 0 {
		return 0
	}
	perBlock := c.DMASetup.Seconds() + float64(blockBytes)/c.ClusterDMABytesPerSec
	perCluster := float64(blockBytes) / perBlock // bytes/s
	return float64(c.Clusters) * perCluster * 8 / 1e9
}

// IPC models the RW-CP handler's instructions-per-cycle as a function of
// block size (Fig. 11): small blocks touch L2 more often per instruction,
// raising contention and stalling the cores.
func (c Config) IPC(blockBytes int64) float64 {
	if blockBytes <= 0 {
		return 0
	}
	b := float64(blockBytes)
	return c.IPCMax * b / (b + c.IPCKnee)
}

// PacketTimePULP returns the RW-CP handler time for one packet carrying
// blocks regions on a PULP core.
func (c Config) PacketTimePULP(blockBytes, pktBytes int64) sim.Time {
	blocks := float64(pktBytes) / float64(blockBytes)
	if blocks < 1 {
		blocks = 1
	}
	instr := blocks * c.HandlerInstrPerBlock
	cycles := instr / c.IPC(blockBytes)
	return c.RuntimeOverhead + sim.FromSeconds(cycles/c.ClockHz)
}

// PacketTimeARM returns the comparator cost on the gem5 ARM setup.
func (c Config) PacketTimeARM(blockBytes, pktBytes int64) sim.Time {
	blocks := float64(pktBytes) / float64(blockBytes)
	if blocks < 1 {
		blocks = 1
	}
	return c.ARMPerPacket + sim.FromSeconds(blocks*c.ARMPerBlock.Seconds())
}

// KernelPoint is one x-position of Fig. 10/11.
type KernelPoint struct {
	BlockBytes int64
	// PulpGbps and ArmGbps are the processing throughputs (not capped by
	// the network: packets are preloaded in L2, as in the paper).
	PulpGbps float64
	ArmGbps  float64
	// PulpIPC is the modeled handler IPC.
	PulpIPC float64
}

// RWCPKernel reproduces the Sec. 4.3.2 microkernel: a message of msgBytes
// with a vector datatype of the given block size, split into pktBytes
// packets statically assigned to the cores in blocked-RR sequences of
// deltaP. Throughput is msg size over the maximum per-core processing
// time.
func (c Config) RWCPKernel(msgBytes, blockBytes, pktBytes int64, deltaP int) KernelPoint {
	cores := c.Cores()
	npkt := int((msgBytes + pktBytes - 1) / pktBytes)
	nseq := (npkt + deltaP - 1) / deltaP

	// Static blocked-RR assignment: sequence s -> core s mod cores.
	perCore := make([]int, cores)
	for s := 0; s < nseq; s++ {
		pkts := deltaP
		if s == nseq-1 && npkt%deltaP != 0 {
			pkts = npkt % deltaP
		}
		perCore[s%cores] += pkts
	}
	maxPkts := 0
	for _, n := range perCore {
		if n > maxPkts {
			maxPkts = n
		}
	}

	tpulp := sim.Time(maxPkts) * c.PacketTimePULP(blockBytes, pktBytes)
	tarm := sim.Time(maxPkts) * c.PacketTimeARM(blockBytes, pktBytes)
	return KernelPoint{
		BlockBytes: blockBytes,
		PulpGbps:   float64(msgBytes) * 8 / tpulp.Seconds() / 1e9,
		ArmGbps:    float64(msgBytes) * 8 / tarm.Seconds() / 1e9,
		PulpIPC:    c.IPC(blockBytes),
	}
}

// Area holds the published 22 nm synthesis results of Sec. 4.4. These are
// constants from the paper, not model outputs.
type Area struct {
	TotalMGE         float64 // million gate equivalents
	TotalMM2         float64 // silicon area at 85% density
	ClusterPercent   float64 // share of the 4 clusters
	L2Percent        float64 // share of the 8 MiB L2
	InterconnPercent float64
	L1PercentCluster float64 // L1 share within one cluster
	PowerWatts       float64
	ClockGHz         float64
}

// PublishedArea returns the paper's synthesis numbers.
func PublishedArea() Area {
	return Area{
		TotalMGE:         100,
		TotalMM2:         23.5,
		ClusterPercent:   39,
		L2Percent:        59,
		InterconnPercent: 2,
		L1PercentCluster: 84,
		PowerWatts:       6,
		ClockGHz:         1,
	}
}
