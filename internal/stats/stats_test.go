package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); !almostEqual(g, 4, 1e-12) {
		t.Fatalf("GeoMean(2,8) = %v", g)
	}
	if g := GeoMean([]float64{1, 10, 100}); !almostEqual(g, 10, 1e-9) {
		t.Fatalf("GeoMean(1,10,100) = %v", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
	if g := GeoMean([]float64{-3, 0, 5}); !almostEqual(g, 5, 1e-12) {
		t.Fatalf("GeoMean skipping non-positives = %v", g)
	}
}

func TestGeoMeanScaleInvariance(t *testing.T) {
	f := func(a, b, c uint8) bool {
		xs := []float64{float64(a) + 1, float64(b) + 1, float64(c) + 1}
		scaled := []float64{xs[0] * 7, xs[1] * 7, xs[2] * 7}
		return almostEqual(GeoMean(scaled), 7*GeoMean(xs), 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMeanMedian(t *testing.T) {
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
	if m := Median([]float64{5, 1, 3}); m != 3 {
		t.Fatalf("Median odd = %v", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("Median even = %v", m)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	cases := []struct{ p, want float64 }{
		{0, 10}, {100, 50}, {50, 30}, {25, 20}, {75, 40},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEqual(got, c.want, 1e-12) {
			t.Errorf("P%v = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Fatalf("Percentile(nil) = %v", got)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Percentile(xs, 50)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if f := FractionBelow(xs, 3); f != 0.5 {
		t.Fatalf("FractionBelow = %v", f)
	}
	if f := FractionBelow(nil, 3); f != 0 {
		t.Fatalf("FractionBelow(nil) = %v", f)
	}
}

func TestLogHistogram(t *testing.T) {
	h := NewLogHistogram(1, 1024, 10) // decade per bucket in log2: edges 1,2,4,...
	h.Add(1)
	h.Add(3)
	h.Add(1000)
	h.Add(5000) // clamps into last bucket
	h.Add(0.1)  // clamps into first bucket
	if h.Total() != 5 {
		t.Fatalf("total = %d", h.Total())
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != 5 {
		t.Fatalf("bucket sum = %d, want 5 (clamping must preserve totals)", sum)
	}
	if h.Counts[0] < 2 {
		t.Fatalf("first bucket = %d, want >=2 (1 and clamped 0.1)", h.Counts[0])
	}
	if h.Counts[len(h.Counts)-1] < 2 {
		t.Fatalf("last bucket = %d, want >=2 (1000 and clamped 5000)", h.Counts[len(h.Counts)-1])
	}
	if h.String() == "" {
		t.Fatal("empty histogram rendering")
	}
}

func TestLogHistogramInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram params did not panic")
		}
	}()
	NewLogHistogram(0, 10, 4)
}
