// Package stats provides the small statistical helpers used by the
// experiment harness: geometric means, histograms with log-scaled buckets,
// medians and percentiles.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped (matching how the paper aggregates data
// volumes, which are strictly positive). It returns 0 for an empty input.
func GeoMean(xs []float64) float64 {
	sum := 0.0
	n := 0
	for _, x := range xs {
		if x <= 0 {
			continue
		}
		sum += math.Log(x)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// Mean returns the arithmetic mean of xs, or 0 for an empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Median returns the median of xs, or 0 for an empty input.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (0..100) of xs using linear
// interpolation between closest ranks. Returns 0 for an empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// FractionBelow returns the fraction of xs strictly less than bound.
func FractionBelow(xs []float64, bound float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < bound {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// Histogram is a set of counted buckets over float64 samples.
type Histogram struct {
	// Edges holds len(Counts)+1 bucket boundaries; bucket i covers
	// [Edges[i], Edges[i+1]).
	Edges  []float64
	Counts []int
	// Samples retains the raw values so callers can compute summary
	// statistics after binning.
	Samples []float64
}

// NewLogHistogram builds a histogram with log2-spaced bucket edges covering
// [lo, hi]. lo and hi must be positive with lo < hi.
func NewLogHistogram(lo, hi float64, buckets int) *Histogram {
	if lo <= 0 || hi <= lo || buckets <= 0 {
		panic("stats: invalid log histogram parameters")
	}
	edges := make([]float64, buckets+1)
	ratio := math.Pow(hi/lo, 1/float64(buckets))
	edges[0] = lo
	for i := 1; i <= buckets; i++ {
		edges[i] = edges[i-1] * ratio
	}
	edges[buckets] = hi
	return &Histogram{Edges: edges, Counts: make([]int, buckets)}
}

// Add records a sample. Samples outside the edge range clamp to the first or
// last bucket so totals are preserved.
func (h *Histogram) Add(x float64) {
	h.Samples = append(h.Samples, x)
	idx := sort.SearchFloat64s(h.Edges, x)
	// SearchFloat64s returns the first edge >= x; bucket index is one less.
	if idx > 0 {
		idx--
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
}

// Total returns the number of recorded samples.
func (h *Histogram) Total() int { return len(h.Samples) }

// String renders the histogram as an ASCII bar chart.
func (h *Histogram) String() string {
	var b strings.Builder
	max := 0
	for _, c := range h.Counts {
		if c > max {
			max = c
		}
	}
	for i, c := range h.Counts {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", c*40/maxInt(max, 1))
		}
		fmt.Fprintf(&b, "[%10.3g, %10.3g) %4d %s\n", h.Edges[i], h.Edges[i+1], c, bar)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
