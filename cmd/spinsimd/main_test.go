package main

import (
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"spinddt/internal/core"
	"spinddt/internal/ddt"
	"spinddt/internal/server"
	"spinddt/internal/server/client"
	"spinddt/internal/transport"
)

func TestParseBackend(t *testing.T) {
	for name, want := range map[string]string{"mem": "mem", "": "mem", "sim": "sim"} {
		b, err := parseBackend(name)
		if err != nil || b.Name() != want {
			t.Errorf("parseBackend(%q) = %v, %v", name, b, err)
		}
	}
	if _, err := parseBackend("gpu"); err == nil {
		t.Error("bogus backend accepted")
	}
}

// TestServeSignalDrain boots the daemon exactly as main does, drives
// one full client session against it, then delivers the stop signal
// and checks the drained service summary.
func TestServeSignalDrain(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	addr := conn.LocalAddr().String()
	stop := make(chan os.Signal, 1)
	var out strings.Builder
	done := make(chan error, 1)
	go func() {
		done <- serve(conn, server.Config{
			Transport: transport.Config{RTOMin: time.Millisecond, RTOMax: 50 * time.Millisecond, MaxRetries: 30},
		}, stop, &out)
	}()

	c, err := client.Dial(addr, 1, client.Config{
		Transport: transport.Config{RTOMin: time.Millisecond, RTOMax: 50 * time.Millisecond, MaxRetries: 30},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Open(); err != nil {
		t.Fatal(err)
	}
	h, err := c.Commit(ddt.MustVector(64, 16, 48, ddt.Int), core.RWCP)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Post(h, 2, 1); err != nil {
		t.Fatal(err)
	}
	recs, err := c.Flush()
	if err != nil || len(recs) != 1 || !recs[0].Verified {
		t.Fatalf("flush: %+v, %v", recs, err)
	}
	if err := c.CloseSession(); err != nil {
		t.Fatal(err)
	}

	stop <- os.Interrupt
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "1 sessions served") || !strings.Contains(got, "spinsimd: serving on") {
		t.Fatalf("summary output:\n%s", got)
	}
}
