// Command spinsimd is the session daemon: a long-running server that
// multiplexes many concurrent datatype-engine sessions over one
// reliable UDP socket. Each client claims a wire session id and drives
// the commit/post/flush/close protocol of internal/server; the daemon
// gives every peer its own core.Session with bounded resource
// accounting and reaps sessions that go idle.
//
// Example:
//
//	spinsimd -addr 127.0.0.1:7117 -backend mem -max-sessions 4096
//	spinsim  -send 127.0.0.1:7117 -wiremsgs 4 -block 512 -msg 1048576
//
// SIGINT/SIGTERM drains the daemon and prints a service summary.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"spinddt/internal/core"
	"spinddt/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7117", "UDP address to serve on")
	backend := flag.String("backend", "mem", "session backend: mem|sim")
	maxSessions := flag.Int("max-sessions", 4096, "concurrently open sessions")
	maxHandles := flag.Int("max-handles", 64, "committed handles per session")
	budget := flag.Int64("budget", 64<<20, "per-session pending-byte budget")
	idle := flag.Duration("idle", 2*time.Minute, "idle-session reap timeout")
	verbose := flag.Bool("v", false, "log per-request diagnostics")
	flag.Parse()

	cfg := server.Config{
		MaxSessions: *maxSessions,
		MaxHandles:  *maxHandles,
		ByteBudget:  *budget,
		IdleTimeout: *idle,
	}
	var err error
	if cfg.Backend, err = parseBackend(*backend); err != nil {
		fmt.Fprintln(os.Stderr, "spinsimd:", err)
		os.Exit(1)
	}
	if *verbose {
		cfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}

	conn, err := net.ListenPacket("udp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "spinsimd:", err)
		os.Exit(1)
	}
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	if err := serve(conn, cfg, stop, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "spinsimd:", err)
		os.Exit(1)
	}
}

// parseBackend maps the -backend flag to a session backend.
func parseBackend(name string) (core.Backend, error) {
	switch name {
	case "mem", "":
		return core.MemBackend{}, nil
	case "sim":
		return core.SimBackend{}, nil
	}
	return nil, fmt.Errorf("unknown backend %q (want mem or sim)", name)
}

// serve runs the daemon on conn until a stop signal arrives, then
// drains it and prints the service summary.
func serve(conn net.PacketConn, cfg server.Config, stop <-chan os.Signal, out io.Writer) error {
	if cfg.Backend == nil {
		cfg.Backend = core.MemBackend{}
	}
	srv := server.New(conn, cfg)
	fmt.Fprintf(out, "spinsimd: serving on %v (backend %s, max %d sessions, %v idle reap)\n",
		srv.Addr(), cfg.Backend.Name(), cfg.MaxSessions, cfg.IdleTimeout)
	<-stop
	st := srv.Stats()
	srv.Close()
	fmt.Fprintf(out, "spinsimd: %d sessions served (%d still open, %d reaped), %d requests, %d rejections\n",
		st.Opened, st.Open, st.Reaped, st.Requests, st.Rejections)
	return nil
}
