// Command benchjson records the repository's performance trajectory: it
// runs (or reads) `go test -bench` output and emits a machine-readable
// BENCH_<date>.json snapshot, which CI uploads as an artifact so perf
// regressions are visible across commits.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_2026-07-27.json
//	benchjson -bench 'BenchmarkSimulation|BenchmarkEventEngine' # runs go test itself
//
// With no -out, the file name defaults to BENCH_<today>.json in the
// current directory.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds every reported unit beyond ns/op (B/op, allocs/op,
	// MB/s and custom b.ReportMetric units), keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the emitted file format.
type Snapshot struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g. "BenchmarkFoo-8   123   456.7 ns/op   8 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				res.NsPerOp = val
			} else {
				res.Metrics[unit] = val
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		out = append(out, res)
	}
	return out, sc.Err()
}

func main() {
	out := flag.String("out", "", "output file (default BENCH_<date>.json)")
	bench := flag.String("bench", "", "run `go test -bench` with this pattern instead of reading stdin")
	pkg := flag.String("pkg", "./...", "package pattern for -bench runs")
	benchtime := flag.String("benchtime", "1x", "benchtime for -bench runs")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *bench != "" {
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
			"-benchmem", "-benchtime", *benchtime, *pkg)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			fatal(err)
		}
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		defer func() {
			if err := cmd.Wait(); err != nil {
				fatal(err)
			}
		}()
		src = io.TeeReader(pipe, os.Stdout)
	} else if stat, err := os.Stdin.Stat(); err == nil && stat.Mode()&os.ModeCharDevice != 0 {
		fatal(fmt.Errorf("no piped input; pass -bench <pattern> or pipe `go test -bench` output"))
	}

	results, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	date := time.Now().Format("2006-01-02")
	snap := Snapshot{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), path)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
