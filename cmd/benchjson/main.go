// Command benchjson records the repository's performance trajectory: it
// runs (or reads) `go test -bench` output and emits a machine-readable
// BENCH_<date>.json snapshot, which CI uploads as an artifact so perf
// regressions are visible across commits.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson -out BENCH_2026-07-27.json
//	benchjson -bench 'BenchmarkSimulation|BenchmarkEventEngine' # runs go test itself
//	benchjson -bench '...' -compare BENCH_BASELINE.json -tolerance 0.25
//	benchjson -bench '...' -compare ... -mem-tolerance 0.10  # gate B/op and allocs/op too
//	benchjson -bench '...' -count 3   # best-of-3: min ns/op per benchmark
//
// With no -out, the file name defaults to BENCH_<today>.json in the
// current directory.
//
// When a benchmark appears more than once in the input (go test -count,
// or the -count flag of a -bench run), the runs collapse to the one with
// the minimum ns/op: min-of-N is the noise statistic least sensitive to
// GC and scheduler interference, which matters on small CI machines.
//
// -compare gates the fresh run against a checked-in baseline snapshot:
// every baseline benchmark must be present in the fresh run and no slower
// than (1 + tolerance) times its baseline ns/op, or the process exits
// nonzero listing the regressions. B/op and allocs/op are gated the same
// way against -mem-tolerance whenever the baseline records them — memory
// counters are near-deterministic, so their tolerance can sit well below
// the timing one and still catch a pooling regression that timing noise
// would hide. CI runs this as `make bench-check` so perf regressions fail
// the PR instead of only shipping an artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds every reported unit beyond ns/op (B/op, allocs/op,
	// MB/s and custom b.ReportMetric units), keyed by unit name.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Snapshot is the emitted file format.
type Snapshot struct {
	Date       string   `json:"date"`
	GoVersion  string   `json:"go_version"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	Benchmarks []Result `json:"benchmarks"`
}

// benchLine matches e.g. "BenchmarkFoo-8   123   456.7 ns/op   8 B/op".
var benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)

func parse(r io.Reader) ([]Result, error) {
	var out []Result
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			continue
		}
		res := Result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			val, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				res.NsPerOp = val
			} else {
				res.Metrics[unit] = val
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		out = append(out, res)
	}
	return dedupeMin(out), sc.Err()
}

// dedupeMin collapses repeated runs of one benchmark (go test -count) to
// the run with the minimum ns/op, preserving first-seen order.
func dedupeMin(in []Result) []Result {
	idx := make(map[string]int, len(in))
	out := in[:0]
	for _, r := range in {
		name := trimProcSuffix(r.Name)
		if i, ok := idx[name]; ok {
			if r.NsPerOp < out[i].NsPerOp {
				out[i] = r
			}
			continue
		}
		idx[name] = len(out)
		out = append(out, r)
	}
	return out
}

func main() {
	out := flag.String("out", "", "output file (default BENCH_<date>.json)")
	bench := flag.String("bench", "", "run `go test -bench` with this pattern instead of reading stdin")
	pkg := flag.String("pkg", "./...", "package pattern for -bench runs")
	benchtime := flag.String("benchtime", "1x", "benchtime for -bench runs")
	count := flag.Int("count", 1, "go test -count for -bench runs; repeats collapse to min ns/op")
	compare := flag.String("compare", "", "baseline snapshot to gate the fresh results against")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression for -compare")
	memTolerance := flag.Float64("mem-tolerance", 0.10, "allowed fractional B/op and allocs/op regression for -compare")
	flag.Parse()

	var src io.Reader = os.Stdin
	if *bench != "" {
		// -p 1 serializes the package test binaries: without it, go test
		// runs them concurrently and a core-saturating benchmark in one
		// package (BenchmarkSimulationSharded) would contend with a
		// nanosecond microbench timing in another, making recorded and
		// gated ns/op non-comparable.
		cmd := exec.Command("go", "test", "-run", "^$", "-bench", *bench,
			"-benchmem", "-benchtime", *benchtime, "-count", strconv.Itoa(*count),
			"-p", "1", *pkg)
		cmd.Stderr = os.Stderr
		pipe, err := cmd.StdoutPipe()
		if err != nil {
			fatal(err)
		}
		if err := cmd.Start(); err != nil {
			fatal(err)
		}
		defer func() {
			if err := cmd.Wait(); err != nil {
				fatal(err)
			}
		}()
		src = io.TeeReader(pipe, os.Stdout)
	} else if stat, err := os.Stdin.Stat(); err == nil && stat.Mode()&os.ModeCharDevice != 0 {
		fatal(fmt.Errorf("no piped input; pass -bench <pattern> or pipe `go test -bench` output"))
	}

	results, err := parse(src)
	if err != nil {
		fatal(err)
	}
	if len(results) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in input"))
	}

	date := time.Now().Format("2006-01-02")
	snap := Snapshot{
		Date:       date,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: results,
	}
	path := *out
	if path == "" {
		path = "BENCH_" + date + ".json"
	}
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "benchjson: wrote %d benchmarks to %s\n", len(results), path)

	if *compare != "" {
		if err := gate(*compare, results, *tolerance, *memTolerance); err != nil {
			fatal(err)
		}
	}
}

// gate compares fresh results against the baseline snapshot at path:
// every baseline benchmark must appear in the fresh run no slower than
// (1 + tolerance) times its baseline ns/op, and — when the baseline
// records them — no more than (1 + memTolerance) times its baseline
// B/op and allocs/op.
func gate(path string, fresh []Result, tolerance, memTolerance float64) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var base Snapshot
	if err := json.Unmarshal(raw, &base); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(base.Benchmarks) == 0 {
		return fmt.Errorf("%s: no baseline benchmarks", path)
	}
	byName := make(map[string]Result, len(fresh))
	for _, r := range fresh {
		// Strip the -GOMAXPROCS suffix so baselines port across machines.
		byName[trimProcSuffix(r.Name)] = r
	}
	var failures []string
	fmt.Fprintf(os.Stderr, "benchjson: gating against %s (tolerance %.0f%%, mem %.0f%%)\n",
		path, tolerance*100, memTolerance*100)
	for _, b := range base.Benchmarks {
		name := trimProcSuffix(b.Name)
		got, ok := byName[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: in baseline but missing from this run (update %s if it was renamed)", name, path))
			continue
		}
		ratio := got.NsPerOp / b.NsPerOp
		verdict := "ok"
		if got.NsPerOp > b.NsPerOp*(1+tolerance) {
			verdict = "REGRESSION"
			failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op (%+.1f%%, tolerance %.0f%%)",
				name, got.NsPerOp, b.NsPerOp, (ratio-1)*100, tolerance*100))
		}
		fmt.Fprintf(os.Stderr, "  %-45s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
			name, b.NsPerOp, got.NsPerOp, (ratio-1)*100, verdict)
		// Memory units gate only when the baseline recorded them, so old
		// snapshots (and benchmarks without -benchmem) stay comparable.
		for _, unit := range []string{"B/op", "allocs/op"} {
			want, ok := b.Metrics[unit]
			if !ok || want == 0 {
				continue
			}
			have, ok := got.Metrics[unit]
			if !ok {
				failures = append(failures, fmt.Sprintf("%s: baseline records %s but this run did not report it", name, unit))
				continue
			}
			mratio := have / want
			mverdict := "ok"
			if have > want*(1+memTolerance) {
				mverdict = "REGRESSION"
				failures = append(failures, fmt.Sprintf("%s: %.0f %s vs baseline %.0f %s (%+.1f%%, tolerance %.0f%%)",
					name, have, unit, want, unit, (mratio-1)*100, memTolerance*100))
			}
			fmt.Fprintf(os.Stderr, "  %-45s %12.0f -> %12.0f %-9s %+6.1f%%  %s\n",
				name, want, have, unit, (mratio-1)*100, mverdict)
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d benchmark(s) failed the gate:\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	fmt.Fprintf(os.Stderr, "benchjson: gate passed (%d benchmarks)\n", len(base.Benchmarks))
	return nil
}

// trimProcSuffix drops the -N GOMAXPROCS suffix of a benchmark name.
func trimProcSuffix(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
