// Command ddtbench regenerates every table and figure of the paper's
// evaluation from the simulators in this repository.
//
// Usage:
//
//	ddtbench -fig all            # every figure and ablation
//	ddtbench -fig 8 -msg 4194304 # one figure at a chosen message size
//	ddtbench -fig 16             # the full application sweep
//	ddtbench -engine sharded     # same outputs on the sharded engine
//
// Figure ids: 2, 8, 9c, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, cluster,
// ablations, alltoall, haloexchange, haloexchange64, haloscaling, haloscaling512, incast.
//
// -engine selects the discrete-event executor: "serial" (default) or
// "sharded" (domains with conservative-lookahead synchronization,
// sim.Shard). Outputs are byte-identical either way — the determinism CI
// job renders both and diffs them against the same goldens.
package main

import (
	"flag"
	"fmt"
	"os"

	"spinddt/internal/apps"
	"spinddt/internal/core"
	"spinddt/internal/experiments"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate (2|8|9b|9c|10|11|12|13|14|15|16|17|18|19|cluster|ablations|alltoall|haloexchange|haloexchange64|haloscaling|haloscaling512|incast|all) or the plans snapshot (plans, not in all)")
	msg := flag.Int64("msg", 4<<20, "message size in bytes for the microbenchmarks")
	fftN := flag.Int("fft-n", 20480, "FFT2D matrix dimension for Fig. 19")
	engine := flag.String("engine", "serial", "discrete-event executor: serial|sharded")
	flag.Parse()

	switch *engine {
	case "serial":
		core.DefaultEngine = core.EngineSerial
	case "sharded":
		core.DefaultEngine = core.EngineSharded
	default:
		fmt.Fprintf(os.Stderr, "ddtbench: unknown engine %q\n", *engine)
		os.Exit(1)
	}

	if err := run(*fig, *msg, *fftN); err != nil {
		fmt.Fprintln(os.Stderr, "ddtbench:", err)
		os.Exit(1)
	}
}

func run(fig string, msg int64, fftN int) error {
	all := fig == "all"
	did := false

	show := func(t fmt.Stringer, err error) error {
		if err != nil {
			return err
		}
		fmt.Println(t)
		did = true
		return nil
	}

	if all || fig == "2" {
		if err := show(experiments.Fig02Latency()); err != nil {
			return err
		}
	}
	if all || fig == "8" {
		if err := show(experiments.Fig08Throughput(msg, nil)); err != nil {
			return err
		}
	}
	if all || fig == "9b" {
		if err := show(experiments.Fig09bArea(), nil); err != nil {
			return err
		}
	}
	if all || fig == "9c" {
		if err := show(experiments.Fig09cPULPBandwidth(), nil); err != nil {
			return err
		}
	}
	if all || fig == "10" {
		if err := show(experiments.Fig10PULPvsARM(), nil); err != nil {
			return err
		}
	}
	if all || fig == "11" {
		if err := show(experiments.Fig11PULPIPC(), nil); err != nil {
			return err
		}
	}
	if all || fig == "12" {
		if err := show(experiments.Fig12HandlerBreakdown(msg)); err != nil {
			return err
		}
	}
	if all || fig == "13" {
		a, b, c, err := experiments.Fig13Scalability(msg)
		if err != nil {
			return err
		}
		fmt.Println(a)
		fmt.Println(b)
		fmt.Println(c)
		did = true
	}
	if all || fig == "14" {
		if err := show(experiments.Fig14DMAQueue(msg)); err != nil {
			return err
		}
	}
	if all || fig == "15" {
		if err := show(experiments.Fig15DMAQueueOverTime(msg, 16)); err != nil {
			return err
		}
	}
	if all || fig == "16" || fig == "17" || fig == "18" {
		results, err := experiments.RunApps(apps.All())
		if err != nil {
			return err
		}
		if all || fig == "16" {
			fmt.Println(experiments.Fig16AppSpeedups(results))
		}
		if all || fig == "17" {
			fmt.Println(experiments.Fig17Traffic(results))
		}
		if all || fig == "18" {
			fmt.Println(experiments.Fig18Amortization(results))
		}
		did = true
	}
	if all || fig == "cluster" {
		if err := show(experiments.ShardedClusterExchange(8, msg)); err != nil {
			return err
		}
	}
	if all || fig == "19" {
		_, t, err := experiments.Fig19FFT2D(fftN, nil)
		if err != nil {
			return err
		}
		fmt.Println(t)
		did = true
	}
	if all || fig == "ablations" {
		if err := show(experiments.AblationEpsilon(msg, 512)); err != nil {
			return err
		}
		if err := show(experiments.AblationDeltaP(msg, 512)); err != nil {
			return err
		}
		if err := show(experiments.AblationOutOfOrder(msg/4, 512)); err != nil {
			return err
		}
		if err := show(experiments.AblationNormalization()); err != nil {
			return err
		}
		if err := show(experiments.AblationSender(msg, 512)); err != nil {
			return err
		}
	}
	if all || fig == "alltoall" {
		if err := show(experiments.AlltoallExchange(8, msg)); err != nil {
			return err
		}
	}
	if all || fig == "haloexchange" {
		if err := show(experiments.HaloExchange(8, msg)); err != nil {
			return err
		}
	}
	if all || fig == "haloexchange64" {
		if err := show(experiments.HaloExchange(64, 256<<10)); err != nil {
			return err
		}
	}
	if all || fig == "haloscaling" {
		if err := show(experiments.HaloWeakScaling(64, 256<<10)); err != nil {
			return err
		}
	}
	// Paper-scale weak scaling: the ring doubles to 512 ranks. The message
	// drops to 64 KiB so the figure's live buffers stay in the hundreds of
	// megabytes (1024 sources + 1024 destinations of ~2x message extent).
	if all || fig == "haloscaling512" {
		if err := show(experiments.HaloWeakScaling(512, 64<<10)); err != nil {
			return err
		}
	}
	if all || fig == "incast" {
		if err := show(experiments.Incast(32, 256<<10)); err != nil {
			return err
		}
	}
	// The plan listing is a snapshot golden with its own target (`make
	// plans-golden`), not a paper figure: it is deliberately NOT part of
	// `-fig all` so the figure goldens stay exactly the paper's evaluation.
	if fig == "plans" {
		if err := show(experiments.PlanReport()); err != nil {
			return err
		}
	}
	if !did {
		return fmt.Errorf("unknown figure %q", fig)
	}
	return nil
}
