package main

import "testing"

func TestParseStrategy(t *testing.T) {
	for _, name := range []string{"specialized", "spec", "rwcp", "RW-CP", "rocp", "hpulocal", "host", "iovec"} {
		if _, err := parseStrategy(name); err != nil {
			t.Errorf("%q rejected: %v", name, err)
		}
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run("rwcp", 256, 0, 1<<16, 8, 0.2, 4, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := run("host", 512, 1024, 1<<16, 8, 0.2, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("rwcp", 3, 0, 1<<16, 8, 0.2, 0, 1, 0); err == nil {
		t.Fatal("block size 3 accepted")
	}
}
