package main

import (
	"net"
	"strings"
	"testing"
)

func TestParseStrategy(t *testing.T) {
	for _, name := range []string{"specialized", "spec", "rwcp", "RW-CP", "rocp", "hpulocal", "host", "iovec"} {
		if _, err := parseStrategy(name); err != nil {
			t.Errorf("%q rejected: %v", name, err)
		}
	}
	if _, err := parseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	if err := run("rwcp", 256, 0, 1<<16, 8, 0.2, 4, 1, 5); err != nil {
		t.Fatal(err)
	}
	if err := run("host", 512, 1024, 1<<16, 8, 0.2, 0, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := run("rwcp", 3, 0, 1<<16, 8, 0.2, 0, 1, 0); err == nil {
		t.Fatal("block size 3 accepted")
	}
}

// TestWireServeSend moves real transfers between the -serve and -send
// modes over UDP loopback — the in-process session daemon on one side,
// the session-protocol client on the other, with sender-side packet
// drops the reliability layer has to absorb — and requires every
// posted wire stream to come back verified by the daemon's scatter
// check.
func TestWireServeSend(t *testing.T) {
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Skipf("no UDP loopback: %v", err)
	}
	const msgs = 3
	var serveOut strings.Builder
	serveErr := make(chan error, 1)
	go func() { serveErr <- serveWire(conn, 1, &serveOut) }()

	typ, err := vectorType(512, 0, 1<<18)
	if err != nil {
		t.Fatal(err)
	}
	var sendOut strings.Builder
	if err := sendWire(conn.LocalAddr().String(), typ, 1, msgs, 9, 7, 0.05, &sendOut); err != nil {
		t.Fatalf("send: %v\n%s", err, sendOut.String())
	}
	if err := <-serveErr; err != nil {
		t.Fatalf("serve: %v\n%s", err, serveOut.String())
	}
	if got := sendOut.String(); strings.Count(got, "verified=true") != msgs {
		t.Fatalf("sender output missing verified messages:\n%s", got)
	}
	if !strings.Contains(sendOut.String(), "acks received") {
		t.Fatalf("sender output missing transport stats:\n%s", sendOut.String())
	}
	if !strings.Contains(serveOut.String(), "served 1 sessions") {
		t.Fatalf("server output missing session summary:\n%s", serveOut.String())
	}
}
