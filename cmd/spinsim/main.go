// Command spinsim runs a single unpack simulation with explicit parameters
// and prints the full result: throughput, handler breakdown, NIC memory,
// DMA statistics and verification status.
//
// Example:
//
//	spinsim -strategy rwcp -block 256 -msg 1048576 -hpus 16 -ooo 8
//
// The wire modes move real transfers between two processes over the
// reliable UDP transport: -serve runs the spinsimd session daemon
// in-process, -send drives it through the session protocol
// (internal/server/client) — committing the flag-described vector and
// posting caller-packed wire streams the daemon scatters and
// byte-verifies — surviving injected packet drops:
//
//	spinsim -serve 127.0.0.1:7117 -sessions 1
//	spinsim -send 127.0.0.1:7117 -wiremsgs 4 -block 512 -msg 1048576 -drop 0.05
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"net"
	"os"
	"strings"

	"spinddt/internal/core"
	"spinddt/internal/ddt"
	"spinddt/internal/fabric"
	"spinddt/internal/nic"
)

func main() {
	strategy := flag.String("strategy", "rwcp", "specialized|rwcp|rocp|hpulocal|host|iovec")
	block := flag.Int64("block", 512, "vector block size in bytes")
	stride := flag.Int64("stride", 0, "vector stride in bytes (default 2x block)")
	msg := flag.Int64("msg", 1<<20, "message size in bytes")
	hpus := flag.Int("hpus", 16, "number of HPUs")
	epsilon := flag.Float64("epsilon", 0.2, "checkpoint heuristic tolerance")
	ooo := flag.Int("ooo", 0, "out-of-order delivery window in packets (0 = in-order)")
	seed := flag.Int64("seed", 1, "payload and reorder seed")
	trace := flag.Int("trace", 0, "print the first N NIC pipeline trace events")
	serve := flag.String("serve", "", "serve transfers over reliable UDP on this address (e.g. 127.0.0.1:7117)")
	send := flag.String("send", "", "send the -block/-stride/-msg vector over reliable UDP to this server address")
	wiremsgs := flag.Int("wiremsgs", 1, "number of wire messages to send per session")
	sessions := flag.Int("sessions", 1, "number of client sessions -serve waits for before exiting")
	session := flag.Uint("session", 1, "wire session id -send claims on the daemon (nonzero)")
	drop := flag.Float64("drop", 0, "sender-side injected datagram drop rate in [0, 1) (the transport recovers)")
	flag.Parse()

	var err error
	switch {
	case *serve != "" && *send != "":
		err = fmt.Errorf("-serve and -send are mutually exclusive")
	case *serve != "":
		err = runServe(*serve, *sessions)
	case *send != "":
		err = runSend(*send, *block, *stride, *msg, *wiremsgs, uint32(*session), *seed, *drop)
	default:
		err = run(*strategy, *block, *stride, *msg, *hpus, *epsilon, *ooo, *seed, *trace)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "spinsim:", err)
		os.Exit(1)
	}
}

// runServe binds the daemon address and serves n client sessions.
func runServe(addr string, n int) error {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return err
	}
	return serveWire(conn, n, os.Stdout)
}

// runSend builds the vector type the simulation flags describe and
// drives it through a session on the daemon.
func runSend(addr string, block, stride, msg int64, n int, session uint32, seed int64, drop float64) error {
	typ, err := vectorType(block, stride, msg)
	if err != nil {
		return err
	}
	if session == 0 {
		return fmt.Errorf("-session must be nonzero (0 is the daemon's own wire session)")
	}
	return sendWire(addr, typ, 1, n, session, seed, drop, os.Stdout)
}

// vectorType builds the -block/-stride/-msg vector datatype shared by the
// simulation and wire-send modes.
func vectorType(block, stride, msg int64) (*ddt.Type, error) {
	if block <= 0 || block%4 != 0 {
		return nil, fmt.Errorf("block size %d must be a positive multiple of 4", block)
	}
	if stride == 0 {
		stride = 2 * block
	}
	count := int(msg / block)
	return ddt.NewVector(count, int(block/4), int(stride/4), ddt.Int)
}

func parseStrategy(s string) (core.Strategy, error) {
	switch strings.ToLower(s) {
	case "specialized", "spec":
		return core.Specialized, nil
	case "rwcp", "rw-cp":
		return core.RWCP, nil
	case "rocp", "ro-cp":
		return core.ROCP, nil
	case "hpulocal", "hpu-local":
		return core.HPULocal, nil
	case "host":
		return core.HostUnpack, nil
	case "iovec", "portals":
		return core.PortalsIovec, nil
	default:
		return 0, fmt.Errorf("unknown strategy %q", s)
	}
}

func run(strategyName string, block, stride, msg int64, hpus int, epsilon float64, ooo int, seed int64, trace int) error {
	strategy, err := parseStrategy(strategyName)
	if err != nil {
		return err
	}
	typ, err := vectorType(block, stride, msg)
	if err != nil {
		return err
	}

	req := core.NewRequest(strategy, typ, 1)
	req.NIC.HPUs = hpus
	req.Epsilon = epsilon
	req.Seed = seed
	if trace > 0 {
		req.NIC.Trace = &nic.Trace{Limit: trace}
	}
	if ooo > 0 {
		n := req.NIC.Fabric.NumPackets(typ.Size())
		req.Order = fabric.ReorderWindow(n, ooo, rand.New(rand.NewSource(seed)))
	}

	res, err := core.Run(req)
	if err != nil {
		return err
	}

	fmt.Printf("strategy            %v\n", res.Strategy)
	fmt.Printf("message             %d bytes (%d packets, gamma=%.1f)\n",
		res.MsgBytes, req.NIC.Fabric.NumPackets(res.MsgBytes), res.Gamma)
	fmt.Printf("processing time     %v\n", res.ProcTime)
	fmt.Printf("throughput          %.1f Gbit/s\n", res.ThroughputGbps())
	fmt.Printf("verified            %v\n", res.Verified)
	if res.NIC.HandlerRuns > 0 {
		runs := float64(res.NIC.HandlerRuns)
		b := res.NIC.Handler
		fmt.Printf("handlers            %d runs, avg init %.0fns setup %.0fns proc %.0fns\n",
			res.NIC.HandlerRuns, b.Init.Nanoseconds()/runs,
			b.Setup.Nanoseconds()/runs, b.Processing.Nanoseconds()/runs)
	}
	if res.UnpackCPU > 0 {
		fmt.Printf("host unpack         %v (after %v receive)\n", res.UnpackCPU, res.RecvTime)
	}
	fmt.Printf("NIC memory          %d bytes\n", res.NICBytes)
	if res.Checkpoints > 0 {
		fmt.Printf("checkpoints         %d (interval %d bytes, dp=%d pkts)\n",
			res.Checkpoints, res.Interval, res.Choice.DeltaP)
		fmt.Printf("host prep           %v (%d bytes to NIC)\n", res.Prep.Total(), res.Prep.CopyBytes)
	}
	fmt.Printf("DMA                 %d writes, %d wire bytes, peak queue %d\n",
		res.NIC.DMA.Writes, res.NIC.DMA.WireBytes, res.NIC.DMA.MaxQueueDepth)
	if req.NIC.Trace != nil {
		fmt.Printf("\n%s\n%s", req.NIC.Trace.Summary(), req.NIC.Trace)
	}
	return nil
}
