// Wire modes: -serve runs the spinsimd session daemon in-process until
// the requested number of client sessions have come and gone; -send
// drives a daemon through the internal/server/client protocol — open a
// session, commit the flag-described vector, post caller-packed wire
// streams the server scatters and byte-verifies, flush, close.
// Together they move non-contiguous transfers between two processes:
//
//	spinsim -serve 127.0.0.1:7117 -sessions 1
//	spinsim -send 127.0.0.1:7117 -wiremsgs 4 -block 512 -msg 1048576
package main

import (
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"spinddt/internal/ddt"
	"spinddt/internal/server"
	"spinddt/internal/server/client"
	"spinddt/internal/transport"
)

// wireServeTimeout bounds how long -serve waits for its sessions.
const wireServeTimeout = 60 * time.Second

// serveWire runs the session daemon on conn until nsessions client
// sessions have closed (or been reaped), then prints the service
// summary.
func serveWire(conn net.PacketConn, nsessions int, out io.Writer) error {
	srv := server.New(conn, server.Config{})
	defer srv.Close()
	fmt.Fprintf(out, "spinsimd session server on %v, waiting for %d sessions\n", srv.Addr(), nsessions)
	deadline := time.Now().Add(wireServeTimeout)
	for {
		st := srv.Stats()
		if st.Closed+st.Reaped >= int64(nsessions) {
			fmt.Fprintf(out, "served %d sessions (%d reaped), %d requests, %d rejections\n",
				st.Closed+st.Reaped, st.Reaped, st.Requests, st.Rejections)
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("timed out with %d of %d sessions served", st.Closed+st.Reaped, nsessions)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// sendWire gathers count elements of typ from a seeded source image and
// posts nmsgs caller-packed copies to the daemon at addr on the given
// wire session, optionally through a fault-injecting wrapper that drops
// the given fraction of datagrams (the reliability layer recovers; the
// stats line shows the retransmissions). The daemon scatters each
// stream and byte-verifies it against the reference unpack; the flush
// records report the verdicts.
func sendWire(addr string, typ *ddt.Type, count, nmsgs int, session uint32, seed int64, drop float64, out io.Writer) error {
	cfg := client.Config{}
	if drop > 0 {
		cfg.Fault = &transport.FaultConfig{Seed: seed, DropRate: drop}
	}
	c, err := client.Dial(addr, session, cfg)
	if err != nil {
		return err
	}
	defer c.Close()
	if err := c.Open(); err != nil {
		return fmt.Errorf("open session %d: %w", session, err)
	}
	h, err := c.CommitAuto(typ)
	if err != nil {
		return fmt.Errorf("commit: %w", err)
	}

	_, hi := typ.Footprint(count)
	src := make([]byte, hi)
	rng := rand.New(rand.NewSource(seed))
	for i := range src {
		src[i] = byte(rng.Intn(256))
	}
	packed := make([]byte, typ.Size()*int64(count))
	if _, err := ddt.PackInto(typ, count, src, packed); err != nil {
		return err
	}

	start := time.Now()
	for i := 0; i < nmsgs; i++ {
		if _, err := c.PostPacked(h, count, packed); err != nil {
			return fmt.Errorf("post %d: %w", i, err)
		}
	}
	recs, err := c.Flush()
	if err != nil {
		return fmt.Errorf("flush: %w", err)
	}
	elapsed := time.Since(start)
	for i, rec := range recs {
		fmt.Fprintf(out, "msg %-3d %s count=%d wire=%d bytes status=%v verified=%v\n",
			i, typ.Signature(), count, rec.Bytes, rec.Status, rec.Verified)
		if rec.Status != server.StatusOK || !rec.Verified {
			return fmt.Errorf("message %d: status=%v verified=%v", i, rec.Status, rec.Verified)
		}
	}
	if err := c.CloseSession(); err != nil {
		return fmt.Errorf("close session: %w", err)
	}

	st := c.Stats()
	total := int64(nmsgs) * int64(len(packed))
	fmt.Fprintf(out, "sent %d x %d bytes (%s count=%d) in %v: %.1f Mbit/s\n",
		nmsgs, len(packed), typ.Signature(), count, elapsed.Round(time.Millisecond),
		float64(total*8)/elapsed.Seconds()/1e6)
	fmt.Fprintf(out, "transport: %d data frames, %d retransmitted, %d acks received\n",
		st.DataSent, st.Retransmits, st.AcksReceived)
	return nil
}
