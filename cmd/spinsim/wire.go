// Wire modes: -serve receives datatype transfers over the reliable UDP
// transport and scatters them with the block program decoded from the
// wire; -send gathers a committed type and ships it to a server. Together
// they move a non-contiguous transfer between two processes:
//
//	spinsim -serve 127.0.0.1:7117 -wiremsgs 4
//	spinsim -send 127.0.0.1:7117 -wiremsgs 4 -block 512 -msg 1048576
package main

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"net"
	"time"

	"spinddt/internal/ddt"
	"spinddt/internal/transport"
)

// wireRecvTimeout bounds how long the server waits for each message.
const wireRecvTimeout = 60 * time.Second

// serveWire receives nmsgs transfers on conn, scatters each through the
// block program carried in its wire header, and verifies the scatter by
// re-gathering: packing the scattered buffer with the same program must
// reproduce the received wire stream byte for byte.
func serveWire(conn net.PacketConn, nmsgs int, out io.Writer) error {
	ep := transport.NewEndpoint(conn, nil, 1, transport.Config{})
	defer ep.Close()
	fmt.Fprintf(out, "listening on %v for %d messages\n", conn.LocalAddr(), nmsgs)
	for i := 0; i < nmsgs; i++ {
		msg, err := ep.Recv(wireRecvTimeout)
		if err != nil {
			return fmt.Errorf("recv %d: %w", i, err)
		}
		meta, err := transport.DecodeWireMeta(msg.Hdr)
		if err != nil {
			msg.Release()
			return fmt.Errorf("message %d: %w", msg.ID, err)
		}
		if meta.Type == nil {
			fmt.Fprintf(out, "msg %-3d contiguous %d bytes at offset %d\n", msg.ID, len(msg.Payload), meta.Offset)
			msg.Release()
			continue
		}
		_, hi := meta.Type.Footprint(meta.Count)
		dst := make([]byte, hi)
		if err := ddt.Unpack(meta.Type, meta.Count, msg.Payload, dst); err != nil {
			msg.Release()
			return fmt.Errorf("message %d: scatter: %w", msg.ID, err)
		}
		repacked := make([]byte, len(msg.Payload))
		if _, err := ddt.PackInto(meta.Type, meta.Count, dst, repacked); err != nil {
			msg.Release()
			return fmt.Errorf("message %d: regather: %w", msg.ID, err)
		}
		verified := bytes.Equal(repacked, msg.Payload)
		fmt.Fprintf(out, "msg %-3d %s count=%d wire=%d bytes footprint=%d bytes verified=%v\n",
			msg.ID, meta.Type.Signature(), meta.Count, len(msg.Payload), hi, verified)
		msg.Release()
		if !verified {
			return fmt.Errorf("message %d: scattered buffer does not regather to the wire stream", msg.ID)
		}
	}
	st := ep.Stats()
	fmt.Fprintf(out, "served %d messages (%d corrupt frames dropped, %d acks sent)\n",
		st.MsgsReceived, st.CorruptFrames, st.AcksSent)
	return nil
}

// sendWire gathers count elements of typ from a seeded source image and
// ships nmsgs copies to the server at addr, optionally through a
// fault-injecting wrapper that drops the given fraction of datagrams (the
// reliability layer recovers; the stats line shows the retransmissions).
func sendWire(addr string, typ *ddt.Type, count, nmsgs int, seed int64, drop float64, out io.Writer) error {
	peer, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return err
	}
	conn, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	var wire net.PacketConn = conn
	if drop > 0 {
		wire = transport.NewFaultConn(conn, transport.FaultConfig{Seed: seed, DropRate: drop})
	}
	ep := transport.NewEndpoint(wire, peer, 1, transport.Config{})
	defer ep.Close()

	typ.Commit()
	_, hi := typ.Footprint(count)
	src := make([]byte, hi)
	rng := rand.New(rand.NewSource(seed))
	for i := range src {
		src[i] = byte(rng.Intn(256))
	}
	packed := make([]byte, typ.Size()*int64(count))
	if _, err := ddt.PackInto(typ, count, src, packed); err != nil {
		return err
	}
	hdr := transport.EncodeWireMeta(transport.WireMeta{Type: typ, Count: count})

	start := time.Now()
	for i := 0; i < nmsgs; i++ {
		if err := ep.Send(ep.NextMessageID(), hdr, packed); err != nil {
			return fmt.Errorf("send %d: %w", i, err)
		}
	}
	elapsed := time.Since(start)
	st := ep.Stats()
	total := int64(nmsgs) * int64(len(packed))
	fmt.Fprintf(out, "sent %d x %d bytes (%s count=%d) in %v: %.1f Mbit/s\n",
		nmsgs, len(packed), typ.Signature(), count, elapsed.Round(time.Millisecond),
		float64(total*8)/elapsed.Seconds()/1e6)
	fmt.Fprintf(out, "transport: %d data frames, %d retransmitted, %d acks received\n",
		st.DataSent, st.Retransmits, st.AcksReceived)
	return nil
}
