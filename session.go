package spinddt

import (
	"spinddt/internal/core"
)

// The session layer is the persistent-state API an MPI library would sit
// on (paper Sec. 3.2.6 and Fig. 18): commit a datatype once, hold its
// handle, and post many receives — and sends — against it without ever
// rebuilding the offload state.
//
//	sess := spinddt.NewSession(spinddt.NewSessionConfig())
//	col, _ := sess.Commit(columnType)       // block program + offload state, once
//	ep := sess.Endpoint(spinddt.EndpointConfig{})
//	for rank := 0; rank < peers; rank++ {   // an alltoall's receive side
//		futures[rank], _ = ep.Post(col, 1, spinddt.PostOpts{Seed: int64(rank + 1)})
//	}
//	ep.Flush()                              // one batched NIC residency pass
//
// Flush simulates every pending message through ONE device pass: the
// messages contend for the endpoint NIC's inbound parser, HPUs, DMA
// channels and NIC memory, the way a real exchange's traffic does. The
// first post of a handle reports the host preparation cost; every later
// post reports zero (the Fig. 18 amortization). Run, RunSend and
// RunTransfer remain as one-shot wrappers over a private session and
// produce byte-identical results to earlier releases.
//
// The device model is symmetric (the sPIN offload builds packets with the
// same committed block program the receiver scatters with), and so is the
// endpoint: Send posts an outbound message against a handle and
// FlushSends runs every pending send through ONE shared outbound device —
// gather handlers contend for the endpoint's HPUs, the host read path and
// the injection link, and the produced wire stream is byte-verified
// against the reference Pack:
//
//	for rank := 0; rank < peers; rank++ {   // the exchange's send side
//		sfutures[rank], _ = ep.Send(col, 1, spinddt.SendOpts{Seed: int64(rank + 1)})
//	}
//	ep.FlushSends()                         // one batched outbound device pass
//
// The handle's receive strategy selects the sender pipeline: offloaded
// strategies gather on the NIC (PtlProcessPut), HostUnpack packs on the
// CPU, PortalsIovec streams regions as the CPU announces them. The first
// send of a (handle, count) build reports the gather-state preparation;
// later sends report zero — the receive-side amortization, mirrored.

// Session owns a Backend plus the shared offload build caches; it is the
// library-lifetime object. Sessions are safe for concurrent use.
type Session = core.Session

// SessionConfig configures a Session; NewSessionConfig returns the
// paper's defaults.
type SessionConfig = core.SessionConfig

// NewSessionConfig returns the paper's default session configuration:
// the 200 Gbit/s sPIN NIC, the calibrated cost model, ε = 0.2, the serial
// executor and the simulated backend.
func NewSessionConfig() SessionConfig { return core.NewSessionConfig() }

// NewSession returns a Session with its own cache set.
func NewSession(cfg SessionConfig) *Session { return core.NewSession(cfg) }

// TypeHandle is a committed datatype bound to a session and a strategy —
// what MPI_Type_commit returns in a library built on this API. Obtain one
// with Session.Commit (auto-selected strategy) or Session.CommitAs;
// release it with Free.
type TypeHandle = core.TypeHandle

// SelectStrategy picks the receive strategy an MPI library would commit a
// datatype with: vector-like layouts take the specialized handler,
// everything else RW-CP.
func SelectStrategy(t *Datatype) Strategy { return core.SelectStrategy(t) }

// Endpoint is one receiving NIC of a session: Post accumulates messages,
// Flush executes them in a single batched device pass.
type Endpoint = core.Endpoint

// EndpointConfig configures one endpoint (per-endpoint trace collection).
type EndpointConfig = core.EndpointConfig

// PostOpts tunes one posted message; the zero value is a valid default.
type PostOpts = core.PostOpts

// Future is the deferred result of one posted message; Wait flushes the
// endpoint if needed and returns the message's Result.
type Future = core.Future

// SendOpts tunes one posted send; SendReport reports it (including the
// first-send-only gather preparation cost); SendFuture is its deferred
// result, resolved by Endpoint.FlushSends or Wait.
type (
	SendOpts   = core.SendOpts
	SendReport = core.SendReport
	SendFuture = core.SendFuture
)

// CommitOpts tunes one committed handle (Session.CommitWith).
type CommitOpts = core.CommitOpts

// Backend executes the data movement of posted messages. The exchange
// format is the committed datatype's compiled block program: SimBackend
// (the default) replays it through the simulated sPIN NIC's offload
// state, MemBackend executes it directly on host memory — the first
// non-simulated backend and the differential-testing oracle. Custom
// backends implement the same interface against BackendEnv and
// BackendMessage.
type (
	Backend        = core.Backend
	BackendEnv     = core.BackendEnv
	BackendMessage = core.BackendMessage
	SimBackend     = core.SimBackend
	MemBackend     = core.MemBackend
)

// UDPBackend executes posted messages over a real wire: gather on the
// sender, reliable UDP transport (sliding-window ARQ, selective acks,
// RTO backoff — internal/transport), scatter on the receiver from the
// block program decoded off the wire. NewUDPBackend opens the socket
// pair; UDPConfig selects the network ("udp" or the in-memory "pipe"),
// tunes the transport, and optionally injects seeded faults. Close the
// backend (or the owning Session) to release the sockets.
type (
	UDPBackend = core.UDPBackend
	UDPConfig  = core.UDPConfig
)

// NewUDPBackend opens a UDPBackend's socket pair and starts its
// transport endpoints.
func NewUDPBackend(cfg UDPConfig) (*UDPBackend, error) { return core.NewUDPBackend(cfg) }

// BatchError carries per-message errors out of a partially failed flush:
// Errs[i] is message i's error, nil for messages that completed. Each
// affected Future/SendFuture also carries its own error, so one
// timed-out message never poisons its batch siblings.
type BatchError = core.BatchError

// ErrTimeout reports a message whose transport retry budget was
// exhausted; test with errors.Is. ErrSessionClosed reports a commit or
// post on a Session after Close.
var (
	ErrTimeout       = core.ErrTimeout
	ErrSessionClosed = core.ErrSessionClosed
)
