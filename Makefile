# Developer entry points; CI runs the same commands.
#
# CI (.github/workflows/ci.yml) runs these as separate jobs:
#
#   lint         gofmt -l (must print nothing), go vet, staticcheck
#   test         build + test
#   race         `make race` — includes nic/loggops/fabric now that
#                shards execute those models concurrently, and the
#                transport's ARQ endpoints
#   loss-matrix  transport + UDP-backend differential tests under -race
#                at 0%, 1% and 10% injected loss (SPINDDT_LOSS_PCT pins
#                the rate per matrix shard; see `make loss-matrix`)
#   bench-gate   `make bench-check` — reruns the core benchmarks
#                (best-of-$(BENCH_COUNT) per benchmark) and gates them
#                against the checked-in BENCH_BASELINE.json (exit
#                nonzero past the tolerance), so perf regressions fail
#                the PR; the fresh snapshot is still uploaded as an
#                artifact alongside the bench-smoke snapshot
#   determinism  `make determinism` — renders every figure/table twice,
#                once on the serial engine and once on the sharded
#                engine, and diffs both against the golden outputs in
#                testdata/golden/ (byte-identical or the job fails)
#   server-soak  `make soak` — >= 64 concurrent client sessions against
#                an in-process spinsimd session daemon over seeded
#                fault injection, race-clean, one SPINDDT_LOSS_PCT rate
#                per matrix shard; every delivered buffer is
#                byte-verified server-side
#   fuzz-smoke   `make fuzz-smoke` — a FUZZTIME fuzzing budget per wire
#                decoder: the server request/response framing plus the
#                transport frame and block-program decoders (seed
#                corpora committed under each package's testdata/fuzz/)
#
# Refresh the baseline with `make bench-baseline` (on a quiet machine) and
# the goldens with `make golden` whenever an intentional model change
# shifts numbers; commit both.

GO ?= go
BENCH_DATE := $(shell date +%F)
# The core perf benchmarks recorded in BENCH_<date>.json and gated by
# bench-check: the end-to-end simulation hot path, the datatype engine,
# the event-engine microbench, the sharded cluster simulation (serial
# executor baseline + all-cores executor), the session API (committed
# handle reuse + the batched alltoall endpoint pass), the symmetric
# device model (sender-side handle reuse + the sharded halo exchanges
# at 8 and 64 ranks), the reliable transport's steady-state message
# rate, the session daemon's full client-session cycle
# (open/commit/post/flush/close over the in-memory pipe), and the lowered
# execution-plan kernels (pack/unpack and gather resolve per plan kind).
BENCH_CORE := BenchmarkSimulationRWCP1MiB|BenchmarkSimulationSpecialized1MiB|BenchmarkDDTPackUnpack|BenchmarkEventEngine|BenchmarkSimulationClusterSerial|BenchmarkSimulationSharded|BenchmarkSessionPostReuse|BenchmarkAlltoall8|BenchmarkSessionSendReuse|BenchmarkHaloExchange8|BenchmarkHaloExchange64|BenchmarkHaloExchange256|BenchmarkOffloadInstantiate|BenchmarkTransportThroughput|BenchmarkServerThroughput|BenchmarkPlanPack|BenchmarkPlanGather
# Allowed fractional ns/op regression vs BENCH_BASELINE.json.
TOLERANCE ?= 0.25
# Allowed fractional B/op and allocs/op regression vs BENCH_BASELINE.json.
# Memory counters are near-deterministic, so the gate is much tighter
# than the timing one: it is what holds the exchange path's streamed-
# chunk/pooled-state memory diet in place.
MEM_TOLERANCE ?= 0.10
# Gate runs take the best of BENCH_COUNT repetitions per benchmark
# (min ns/op): single runs of the allocation-heavy benchmarks are too
# noisy on a 1-core CI machine to gate at this tolerance.
BENCH_COUNT ?= 3
# Workload of the golden figure renders (kept moderate so the determinism
# job stays fast; the bench smoke still runs paper-scale sizes).
GOLDEN_ARGS := -fig all -msg 1048576

# SOAK_RATES are the injected-loss percentages the server soak runs at
# (CI pins one per shard; a local `make soak` covers the matrix).
SOAK_RATES ?= 0 1 10
# FUZZTIME is the per-target budget of `make fuzz-smoke`.
FUZZTIME ?= 30s

.PHONY: build test race loss-matrix soak fuzz-smoke bench bench-all bench-check bench-baseline golden plans-golden determinism

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ddt/ ./internal/core/ ./internal/sim/ ./internal/experiments/ ./internal/nic/ ./internal/loggops/ ./internal/fabric/ ./internal/transport/ ./internal/server/

# loss-matrix runs the transport and UDP-backend differential tests under
# -race at every loss rate of the matrix (each CI shard pins one rate via
# SPINDDT_LOSS_PCT).
loss-matrix:
	for pct in 0 1 10; do \
		SPINDDT_LOSS_PCT=$$pct $(GO) test -race -count=1 \
			-run 'TestLossMatrix|TestUDPBackend' \
			./internal/transport/ ./internal/core/ || exit 1; \
	done

# soak is the server-soak CI gate: >= 64 concurrent client sessions of
# mixed commit/post/flush traffic with random datatypes against one
# in-process spinsimd, under seeded fault injection on both directions,
# race-clean, at each SOAK_RATES loss percentage. Every delivered
# buffer is byte-verified against the reference unpack of the exact
# wire stream.
soak:
	for pct in $(SOAK_RATES); do \
		SPINDDT_LOSS_PCT=$$pct $(GO) test -race -count=1 \
			-run 'TestServerSoak' ./internal/server/ || exit 1; \
	done

# fuzz-smoke gives each wire decoder a FUZZTIME fuzzing budget (one
# -fuzz run per target; go test allows a single target per invocation).
# Seed corpora are committed under each package's testdata/fuzz/ and
# refreshed with SPINDDT_WRITE_CORPUS=1.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzRequestDecode$$' -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz '^FuzzResponseDecode$$' -fuzztime $(FUZZTIME) ./internal/server/
	$(GO) test -run '^$$' -fuzz '^FuzzFrameDecode$$' -fuzztime $(FUZZTIME) ./internal/transport/
	$(GO) test -run '^$$' -fuzz '^FuzzBlockProgramDecode$$' -fuzztime $(FUZZTIME) ./internal/transport/

# bench records the core perf trajectory to BENCH_<date>.json (multiple
# iterations, stable numbers).
bench:
	$(GO) run ./cmd/benchjson -bench '$(BENCH_CORE)' -benchtime 2s -out BENCH_$(BENCH_DATE).json

# bench-all runs every figure and component benchmark once (the CI smoke
# configuration) and records it. -p 1 keeps package binaries from timing
# against each other (benchjson -bench does the same).
bench-all:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem -p 1 ./... | $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_DATE).json

# bench-check reruns the core benchmarks and fails if any is more than
# TOLERANCE slower — or allocates more than MEM_TOLERANCE past — the
# committed baseline (the CI bench-gate).
bench-check:
	$(GO) run ./cmd/benchjson -bench '$(BENCH_CORE)' -benchtime 2s -count $(BENCH_COUNT) -out BENCH_check.json -compare BENCH_BASELINE.json -tolerance $(TOLERANCE) -mem-tolerance $(MEM_TOLERANCE)

# bench-baseline refreshes the committed baseline snapshot.
bench-baseline:
	$(GO) run ./cmd/benchjson -bench '$(BENCH_CORE)' -benchtime 2s -count $(BENCH_COUNT) -out BENCH_BASELINE.json

# golden refreshes the checked-in figure/table outputs the determinism
# job diffs against.
golden:
	$(GO) run ./cmd/ddtbench $(GOLDEN_ARGS) -engine serial > testdata/golden/ddtbench.txt

# plans-golden refreshes the execution-plan snapshot: the disassembled
# pack/unpack plan and gather resolver of every application datatype.
plans-golden:
	$(GO) run ./cmd/ddtbench -fig plans -engine serial > testdata/golden/plans.txt

# determinism renders every figure/table on both engines and requires
# byte-identical output, pinned to the goldens. Scratch renders land in
# the gitignored out/ directory, never at the repo root.
determinism:
	@mkdir -p out
	$(GO) run ./cmd/ddtbench $(GOLDEN_ARGS) -engine serial > out/ddtbench-serial.out
	$(GO) run ./cmd/ddtbench $(GOLDEN_ARGS) -engine sharded > out/ddtbench-sharded.out
	diff -u testdata/golden/ddtbench.txt out/ddtbench-serial.out
	diff -u testdata/golden/ddtbench.txt out/ddtbench-sharded.out
	$(GO) run ./cmd/ddtbench -fig plans -engine serial > out/plans-serial.out
	$(GO) run ./cmd/ddtbench -fig plans -engine sharded > out/plans-sharded.out
	diff -u testdata/golden/plans.txt out/plans-serial.out
	diff -u testdata/golden/plans.txt out/plans-sharded.out
	@echo "determinism: serial and sharded outputs match the goldens"
