# Developer entry points; CI runs the same commands.

GO ?= go
BENCH_DATE := $(shell date +%F)
# The core perf benchmarks recorded in BENCH_<date>.json: the end-to-end
# simulation hot path, the datatype engine, and the event-engine microbench.
BENCH_CORE := BenchmarkSimulationRWCP1MiB|BenchmarkSimulationSpecialized1MiB|BenchmarkDDTPackUnpack|BenchmarkEventEngine

.PHONY: build test race bench bench-all

build:
	$(GO) build ./...

test:
	$(GO) vet ./...
	$(GO) test ./...

race:
	$(GO) test -race ./internal/ddt/ ./internal/core/ ./internal/sim/ ./internal/experiments/

# bench records the core perf trajectory to BENCH_<date>.json (multiple
# iterations, stable numbers).
bench:
	$(GO) run ./cmd/benchjson -bench '$(BENCH_CORE)' -benchtime 2s -out BENCH_$(BENCH_DATE).json

# bench-all runs every figure and component benchmark once (the CI smoke
# configuration) and records it.
bench-all:
	$(GO) test -run '^$$' -bench . -benchtime 1x -benchmem ./... | $(GO) run ./cmd/benchjson -out BENCH_$(BENCH_DATE).json
