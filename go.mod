module spinddt

go 1.24
