package spinddt_test

import (
	"bytes"
	"testing"

	"spinddt"
)

func TestPublicAPIQuickstart(t *testing.T) {
	// A column of an 8x8 int matrix.
	col, err := spinddt.Vector(8, 1, 8, spinddt.Int)
	if err != nil {
		t.Fatal(err)
	}
	src := make([]byte, 8*8*4)
	for i := range src {
		src[i] = byte(i)
	}
	packed, err := spinddt.Pack(col, 1, src)
	if err != nil {
		t.Fatal(err)
	}
	if len(packed) != 32 {
		t.Fatalf("packed %d bytes", len(packed))
	}
	dst := make([]byte, len(src))
	if err := spinddt.Unpack(col, 1, packed, dst); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		off := i * 8 * 4
		if !bytes.Equal(dst[off:off+4], src[off:off+4]) {
			t.Fatalf("column element %d differs", i)
		}
	}
}

func TestPublicAPIConstructors(t *testing.T) {
	if _, err := spinddt.Contiguous(4, spinddt.Double); err != nil {
		t.Fatal(err)
	}
	if _, err := spinddt.HVector(2, 1, 64, spinddt.Float); err != nil {
		t.Fatal(err)
	}
	if _, err := spinddt.Indexed([]int{1, 2}, []int{0, 4}, spinddt.Int); err != nil {
		t.Fatal(err)
	}
	if _, err := spinddt.IndexedBlock(2, []int{0, 8}, spinddt.Int); err != nil {
		t.Fatal(err)
	}
	if _, err := spinddt.Struct([]int{1}, []int64{0}, []*spinddt.Datatype{spinddt.Long}); err != nil {
		t.Fatal(err)
	}
	if _, err := spinddt.Subarray([]int{4, 4}, []int{2, 2}, []int{1, 1}, spinddt.Byte); err != nil {
		t.Fatal(err)
	}
	if _, err := spinddt.Resized(spinddt.Int, 0, 16); err != nil {
		t.Fatal(err)
	}
	if e := spinddt.Elementary("half", 2); e.Size() != 2 {
		t.Fatal("elementary")
	}
}

func TestPublicAPIRun(t *testing.T) {
	typ, err := spinddt.Vector(4096, 16, 32, spinddt.Int)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range spinddt.AllStrategies {
		res, err := spinddt.Run(spinddt.NewRequest(s, typ, 1))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if !res.Verified || res.ProcTime <= 0 {
			t.Fatalf("%v: %+v", s, res)
		}
	}
}

func TestPublicAPINormalize(t *testing.T) {
	nested, err := spinddt.Contiguous(4, mustContig(t, 8, spinddt.Int))
	if err != nil {
		t.Fatal(err)
	}
	norm := spinddt.Normalize(nested)
	if norm.Size() != nested.Size() {
		t.Fatal("normalization changed size")
	}
}

func mustContig(t *testing.T, n int, base *spinddt.Datatype) *spinddt.Datatype {
	t.Helper()
	c, err := spinddt.Contiguous(n, base)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestPublicAPISend(t *testing.T) {
	typ, err := spinddt.Vector(4096, 16, 32, spinddt.Int)
	if err != nil {
		t.Fatal(err)
	}
	var results []spinddt.SendResult
	for _, s := range []spinddt.SendStrategy{spinddt.PackSend, spinddt.StreamingPuts, spinddt.OutboundSpin} {
		res, err := spinddt.RunSend(spinddt.NewSendRequest(s, typ, 1))
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		if res.Injected <= 0 {
			t.Fatalf("%v: nothing injected", s)
		}
		results = append(results, res)
	}
	// Fig. 4's qualitative ordering of sender CPU involvement.
	if results[2].CPUBusy != 0 {
		t.Fatal("outbound sPIN must not busy the CPU")
	}
	if results[0].CPUBusy <= results[1].CPUBusy {
		t.Fatal("packing must busy the CPU more than streaming")
	}
}

func TestDefaultsExposed(t *testing.T) {
	if spinddt.DefaultNICConfig().HPUs != 16 {
		t.Fatal("default HPUs")
	}
	if spinddt.DefaultCostModel().SpecInit <= 0 {
		t.Fatal("cost model")
	}
	if spinddt.DefaultHostConfig().CopyBandwidth <= 0 {
		t.Fatal("host config")
	}
	if len(spinddt.OffloadStrategies) != 4 || len(spinddt.AllStrategies) != 6 {
		t.Fatal("strategy lists")
	}
}

// TestPublicUDPBackend drives the wire backend through the public API:
// a session whose posted receives travel the reliable UDP transport with
// injected loss must still verify, and a closed session rejects reuse.
func TestPublicUDPBackend(t *testing.T) {
	backend, err := spinddt.NewUDPBackend(spinddt.UDPConfig{Network: "pipe"})
	if err != nil {
		t.Fatal(err)
	}
	cfg := spinddt.NewSessionConfig()
	cfg.Backend = backend
	sess := spinddt.NewSession(cfg)
	col, err := spinddt.Vector(64, 32, 64, spinddt.Int)
	if err != nil {
		t.Fatal(err)
	}
	h, err := sess.Commit(col)
	if err != nil {
		t.Fatal(err)
	}
	ep := sess.Endpoint(spinddt.EndpointConfig{})
	fut, err := ep.Post(h, 2, spinddt.PostOpts{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res, err := fut.Wait(); err != nil || !res.Verified {
		t.Fatalf("wire post: verified=%v err=%v", res.Verified, err)
	}
	sess.Close()
	if _, err := ep.Post(h, 2, spinddt.PostOpts{}); err == nil {
		t.Fatal("post on closed session succeeded")
	}
}
