// Benchmarks regenerating every table and figure of the paper's evaluation.
// Each benchmark prints the figure's rows/series once (the same output
// `ddtbench` produces) and reports a headline metric via testing.B.
//
// Run everything with:
//
//	go test -bench=. -benchmem
package spinddt_test

import (
	"fmt"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"spinddt"
	"spinddt/internal/apps"
	"spinddt/internal/core"
	"spinddt/internal/ddt"
	"spinddt/internal/experiments"
	"spinddt/internal/hostcpu"
	"spinddt/internal/nic"
	"spinddt/internal/plan"
	"spinddt/internal/sim"
)

// paperMsg is the paper's 4 MiB microbenchmark message.
const paperMsg = int64(4 << 20)

var printOnce sync.Map

// printTable emits a figure's table exactly once per process, so bench
// output contains every series without repeating it for b.N iterations.
func printTable(key string, t fmt.Stringer) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Println(t)
	}
}

func BenchmarkFig02PutLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig02Latency()
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig02", t)
	}
}

func BenchmarkFig08UnpackThroughput(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig08Throughput(paperMsg, nil)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig08", t)
	}
}

func BenchmarkFig09cPULPBandwidth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("fig09c", experiments.Fig09cPULPBandwidth())
	}
}

func BenchmarkFig10PULPvsARM(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("fig10", experiments.Fig10PULPvsARM())
	}
}

func BenchmarkFig11PULPIPC(b *testing.B) {
	for i := 0; i < b.N; i++ {
		printTable("fig11", experiments.Fig11PULPIPC())
	}
}

func BenchmarkFig12HandlerBreakdown(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig12HandlerBreakdown(paperMsg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig12", t)
	}
}

func BenchmarkFig13Scalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ta, tb, tc, err := experiments.Fig13Scalability(paperMsg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig13a", ta)
		printTable("fig13b", tb)
		printTable("fig13c", tc)
	}
}

func BenchmarkFig14DMAQueue(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig14DMAQueue(paperMsg)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig14", t)
	}
}

func BenchmarkFig15DMAQueueOverTime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.Fig15DMAQueueOverTime(paperMsg, 16)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig15", t)
	}
}

// BenchmarkFig16AppSpeedups also covers Figs. 17 and 18, which aggregate
// the same application sweep.
func BenchmarkFig16AppSpeedups(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.RunApps(apps.All())
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig16", experiments.Fig16AppSpeedups(results))
		printTable("fig17", experiments.Fig17Traffic(results))
		printTable("fig18", experiments.Fig18Amortization(results))
		best := 0.0
		for _, r := range results {
			if r.SpeedupRWCP > best {
				best = r.SpeedupRWCP
			}
			if r.SpeedupSpec > best {
				best = r.SpeedupSpec
			}
		}
		b.ReportMetric(best, "max-speedup-x")
	}
}

func BenchmarkFig19FFT2DScaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, t, err := experiments.Fig19FFT2D(20480, nil)
		if err != nil {
			b.Fatal(err)
		}
		printTable("fig19", t)
		b.ReportMetric(points[0].SpeedupPc, "speedup-at-64-nodes-%")
	}
}

func BenchmarkAblationEpsilon(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationEpsilon(paperMsg, 512)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation-eps", t)
	}
}

func BenchmarkAblationDeltaP(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationDeltaP(paperMsg, 512)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation-dp", t)
	}
}

func BenchmarkAblationOutOfOrder(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationOutOfOrder(1<<20, 512)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation-ooo", t)
	}
}

func BenchmarkAblationNormalization(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationNormalization()
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation-norm", t)
	}
}

func BenchmarkAblationSender(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationSender(paperMsg, 512)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation-send", t)
	}
}

// --- Component microbenchmarks: the hot paths of the library itself ---

func BenchmarkDDTFlattenVector(b *testing.B) {
	typ := ddt.MustVector(4096, 16, 32, ddt.Int)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if typ.TotalBlocks(1) != 4096 {
			b.Fatal("block count")
		}
	}
}

func BenchmarkDDTPackUnpack(b *testing.B) {
	typ := ddt.MustVector(4096, 16, 32, ddt.Int)
	_, hi := typ.Footprint(1)
	src := make([]byte, hi)
	dst := make([]byte, hi)
	packed := make([]byte, typ.Size())
	b.SetBytes(typ.Size())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ddt.PackInto(typ, 1, src, packed); err != nil {
			b.Fatal(err)
		}
		if err := ddt.Unpack(typ, 1, packed, dst); err != nil {
			b.Fatal(err)
		}
	}
}

// planBenchTypes returns one representative datatype per lowered plan
// kind, all at a 256 KiB packed message.
func planBenchTypes() []struct {
	name string
	typ  *ddt.Type
} {
	displs := make([]int, 4096)
	lens := make([]int, 4096)
	pos := 0
	for i := range displs {
		displs[i] = pos
		lens[i] = 14 + i%5 // 56..72 B regions, non-uniform
		pos += lens[i] + 1 + i%3
	}
	return []struct {
		name string
		typ  *ddt.Type
	}{
		{"contig", ddt.MustContiguous(65536, ddt.Int)},
		{"stride", ddt.MustVector(4096, 16, 32, ddt.Int)},
		{"offsets", ddt.MustIndexed(lens, displs, ddt.Int)},
	}
}

// BenchmarkPlanPack measures the lowered pack kernels alone: one
// pack+unpack round trip per iteration through Type.Plan(), per plan kind.
func BenchmarkPlanPack(b *testing.B) {
	for _, c := range planBenchTypes() {
		b.Run(c.name, func(b *testing.B) {
			typ := c.typ
			typ.Commit()
			p := typ.Plan()
			if p == nil {
				b.Fatal("no plan")
			}
			_, hi := typ.Footprint(1)
			src := make([]byte, hi)
			dst := make([]byte, hi)
			packed := make([]byte, typ.Size())
			b.SetBytes(typ.Size())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p.Pack(1, src, packed)
				p.Unpack(1, packed, dst)
			}
		})
	}
}

// hostReader is the benchmark's in-memory DMA read path. The pointer
// receiver keeps the plan.Reader conversion pointer-shaped (boxing a slice
// header would allocate on every conversion).
type hostReader []byte

func (h *hostReader) Read(hostOff int64, dst []byte) {
	copy(dst, (*h)[hostOff:hostOff+int64(len(dst))])
}

// BenchmarkPlanGather measures the sender-side gather resolvers: the full
// message resolved in MTU-sized packets per iteration, per resolver kind.
// The reader is converted to the interface once, as the device handlers do
// with their DMA engine — Resolve itself must be alloc-free per call.
func BenchmarkPlanGather(b *testing.B) {
	const mtu = 2048
	for _, c := range planBenchTypes() {
		b.Run(c.name, func(b *testing.B) {
			typ := c.typ
			g, _ := core.GatherPlan(typ, 1)
			_, hi := typ.Footprint(1)
			host := hostReader(make([]byte, hi))
			var r plan.Reader = &host
			msg := typ.Size()
			payload := make([]byte, mtu)
			b.SetBytes(msg)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for off := int64(0); off < msg; off += mtu {
					n := int64(mtu)
					if n > msg-off {
						n = msg - off
					}
					if g.Resolve(off, n, payload[:n], r) <= 0 {
						b.Fatal("no blocks")
					}
				}
			}
		})
	}
}

func BenchmarkSimulationRWCP1MiB(b *testing.B) {
	typ := ddt.MustVector(2048, 128, 256, ddt.Int) // 512B blocks, 1 MiB
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.NewRequest(core.RWCP, typ, 1))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verified {
			b.Fatal("not verified")
		}
	}
}

func BenchmarkSimulationSpecialized1MiB(b *testing.B) {
	typ := ddt.MustVector(2048, 128, 256, ddt.Int)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.Run(core.NewRequest(core.Specialized, typ, 1))
		if err != nil {
			b.Fatal(err)
		}
		if !res.Verified {
			b.Fatal("not verified")
		}
	}
}

// clusterBenchRequest is the Fig. 13 scalability workload lifted to a
// cluster: 8 endpoints each receiving a 1 MiB vector of 2 KiB blocks
// through the RW-CP offload, simulated as one sharded run (fabric +
// per-endpoint NIC+HPU + host domains).
func clusterBenchRequest(workers int) core.ClusterRequest {
	typ := ddt.MustVector(512, 512, 1024, ddt.Int) // 2 KiB blocks, 1 MiB
	req := core.NewClusterRequest(core.RWCP, typ, 1, 8)
	req.Stagger = 2 * sim.Microsecond
	req.Workers = workers
	return req
}

func runClusterBench(b *testing.B, workers int) {
	req := clusterBenchRequest(workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := core.RunCluster(req)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Results {
			if !r.Verified {
				b.Fatal("not verified")
			}
		}
	}
}

// BenchmarkSimulationClusterSerial is the serial-executor baseline of the
// sharded cluster simulation.
func BenchmarkSimulationClusterSerial(b *testing.B) { runClusterBench(b, 1) }

// BenchmarkSimulationSharded runs the same cluster on all cores; with >= 4
// cores it must beat BenchmarkSimulationClusterSerial (the bench-gate and
// TestShardedClusterSpeedup both watch this).
func BenchmarkSimulationSharded(b *testing.B) { runClusterBench(b, runtime.GOMAXPROCS(0)) }

// TestShardedClusterSpeedup asserts the tentpole's wall-clock win: on a
// machine with at least 4 cores, the parallel executor must finish the
// cluster workload faster than the serial executor. Best-of-3 on each
// side absorbs scheduler noise; the expected gap (2x or more) dwarfs it.
//
// A wall-clock assertion is only meaningful with the cores to itself, and
// `go test ./...` runs package binaries concurrently — so the test is
// opt-in via SPINDDT_SPEEDUP_TEST=1, which CI's bench-gate job sets in a
// dedicated step after the benchmarks, when the runner is otherwise idle.
func TestShardedClusterSpeedup(t *testing.T) {
	if os.Getenv("SPINDDT_SPEEDUP_TEST") == "" {
		t.Skip("wall-clock test; set SPINDDT_SPEEDUP_TEST=1 to run (CI bench-gate does)")
	}
	if runtime.GOMAXPROCS(0) < 4 {
		t.Skipf("%d cores: the parallel executor needs >= 4 to win", runtime.GOMAXPROCS(0))
	}
	best := func(workers int) time.Duration {
		d := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, err := core.RunCluster(clusterBenchRequest(workers)); err != nil {
				t.Fatal(err)
			}
			if e := time.Since(start); e < d {
				d = e
			}
		}
		return d
	}
	best(runtime.GOMAXPROCS(0)) // warm pools and caches for both paths
	serial := best(1)
	sharded := best(runtime.GOMAXPROCS(0))
	t.Logf("serial %v, sharded %v (%.2fx)", serial, sharded, float64(serial)/float64(sharded))
	if sharded >= serial {
		t.Fatalf("sharded executor (%v) not faster than serial (%v) on %d cores",
			sharded, serial, runtime.GOMAXPROCS(0))
	}
}

// BenchmarkSessionPostReuse measures the session API's amortization claim
// (the Fig. 18 semantics as a perf property): a committed TypeHandle is
// posted 64 times per iteration against one endpoint, and after the first
// post the per-post cost must be bookkeeping only — no offload rebuild, no
// host prep, allocations near zero. Posts are spaced so their arrival
// windows do not overlap: the benchmark isolates the posting path, not
// device contention (BenchmarkAlltoall8 measures that).
func BenchmarkSessionPostReuse(b *testing.B) {
	typ := ddt.MustVector(128, 128, 256, ddt.Int) // 512 B blocks, 64 KiB
	sess := spinddt.NewSession(spinddt.NewSessionConfig())
	h, err := sess.Commit(typ)
	if err != nil {
		b.Fatal(err)
	}
	ep := sess.Endpoint(spinddt.EndpointConfig{})
	const posts = 64
	const gap = 50 * sim.Microsecond
	run := func() {
		for p := 0; p < posts; p++ {
			if _, err := ep.Post(h, 1, spinddt.PostOpts{Seed: 1, Start: sim.Time(p) * gap}); err != nil {
				b.Fatal(err)
			}
		}
		if err := ep.Flush(); err != nil {
			b.Fatal(err)
		}
	}
	run() // absorb the one-time build and first-post prep
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkAlltoall8 regenerates the alltoall figure: 7 peer messages
// batched through one NIC residency pass per strategy, the multi-message
// contention workload of the session API.
func BenchmarkAlltoall8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AlltoallExchange(8, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		printTable("alltoall", t)
	}
}

// BenchmarkSessionSendReuse is the sender-side mirror of
// BenchmarkSessionPostReuse: a committed TypeHandle is sent 64 times per
// iteration through one endpoint's outbound device, and after the first
// send the per-send cost must be bookkeeping only — no gather rebuild, no
// host prep. Sends are spaced so their injection windows do not overlap.
func BenchmarkSessionSendReuse(b *testing.B) {
	typ := ddt.MustVector(128, 128, 256, ddt.Int) // 512 B blocks, 64 KiB
	sess := spinddt.NewSession(spinddt.NewSessionConfig())
	h, err := sess.Commit(typ)
	if err != nil {
		b.Fatal(err)
	}
	ep := sess.Endpoint(spinddt.EndpointConfig{})
	const sends = 64
	const gap = 50 * sim.Microsecond
	run := func() {
		for p := 0; p < sends; p++ {
			if _, err := ep.Send(h, 1, spinddt.SendOpts{Seed: 1, Start: sim.Time(p) * gap}); err != nil {
				b.Fatal(err)
			}
		}
		if err := ep.FlushSends(); err != nil {
			b.Fatal(err)
		}
	}
	run() // absorb the one-time gather build and first-send prep
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run()
	}
}

// BenchmarkHaloExchange8 regenerates the haloexchange figure: an 8-rank
// ring where every rank's two gathered sends contend on its outbound
// device and its two receives on its inbound device, sharded one domain
// per rank — the full symmetric device model under the parallel executor.
func BenchmarkHaloExchange8(b *testing.B) {
	// One untimed warm-up pass: the exchange allocates ~340MB, and its
	// cold run (GC pacing from whatever heap the preceding benchmarks
	// left) can exceed -benchtime on one core, pinning the framework at
	// a single unrepresentative iteration.
	if t, err := experiments.HaloExchange(8, 1<<20); err != nil {
		b.Fatal(err)
	} else {
		printTable("haloexchange", t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.HaloExchange(8, 1<<20)
		if err != nil {
			b.Fatal(err)
		}
		printTable("haloexchange", t)
	}
}

// BenchmarkHaloExchange64 is the scaled-out exchange figure: a 64-rank
// ring (128 gathered sends, 128 verified receives) at 256 KiB per
// neighbor message, one sharded domain per rank. The headline metrics
// are B/op and allocs/op — with the streamed wire chunks and pooled
// exchange state the footprint must stay flat in rank count, not grow
// with the ~32 MiB of wire traffic in flight.
func BenchmarkHaloExchange64(b *testing.B) {
	// Same untimed warm-up rationale as BenchmarkHaloExchange8.
	if t, err := experiments.HaloExchange(64, 256<<10); err != nil {
		b.Fatal(err)
	} else {
		printTable("haloexchange64", t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.HaloExchange(64, 256<<10)
		if err != nil {
			b.Fatal(err)
		}
		printTable("haloexchange64", t)
	}
}

// BenchmarkHaloExchange256 is the quarter-paper-scale weak-scaling point:
// a 256-rank ring (512 gathered sends, 512 verified receives) at 64 KiB
// per neighbor message. At this rank count the instantiate-not-rebuild
// layer is the difference between one offload build plus 511 pooled
// instantiations and 512 full builds — the benchmark gates both the
// wall-clock and the per-run footprint of that path.
func BenchmarkHaloExchange256(b *testing.B) {
	// Same untimed warm-up rationale as BenchmarkHaloExchange8.
	if t, err := experiments.HaloExchange(256, 64<<10); err != nil {
		b.Fatal(err)
	} else {
		printTable("haloexchange256", t)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := experiments.HaloExchange(256, 64<<10)
		if err != nil {
			b.Fatal(err)
		}
		printTable("haloexchange256", t)
	}
}

// BenchmarkOffloadInstantiate prices one instantiate/release cycle
// against a warm template: the steady-state cost a rank pays for its own
// execution context once the (type, count, strategy) build is cached —
// the quantity the exchange figures multiply by the rank count.
func BenchmarkOffloadInstantiate(b *testing.B) {
	typ := ddt.MustVector(512, 512, 1024, ddt.Char)
	typ.Commit()
	seed, err := core.BuildOffload(core.RWCP, core.BuildParams{
		Type: typ, Count: 1,
		NIC: nic.DefaultConfig(), Cost: core.DefaultCostModel(), Host: hostcpu.DefaultConfig(),
		Epsilon: 0.2,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer seed.Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off, err := seed.Instantiate()
		if err != nil {
			b.Fatal(err)
		}
		off.Release()
	}
}

func BenchmarkAblationEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t, err := experiments.AblationEndToEnd(1<<20, 512)
		if err != nil {
			b.Fatal(err)
		}
		printTable("ablation-e2e", t)
	}
}
