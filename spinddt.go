// Package spinddt is a simulation-backed reproduction of "Network-
// Accelerated Non-Contiguous Memory Transfers" (Di Girolamo et al., SC'19):
// NIC-offloaded processing of MPI derived datatypes on sPIN-capable network
// cards.
//
// The public API exposes four layers:
//
//   - Datatypes: the MPI derived-datatype constructors (Vector, Indexed,
//     Struct, Subarray, ...), their typemap algebra and reference
//     Pack/Unpack. Committing a datatype compiles its flat (or, above the
//     region cap, tiled) block program — the exchange format every layer
//     below consumes — and lowers it once into an execution plan
//     (internal/plan): a contiguous memmove, a strided wide-move kernel,
//     or the general offset list, selected at commit and reused by every
//     pack, unpack, wire verification and transport checksum afterwards.
//   - Sessions and handles: NewSession owns a Backend plus the offload
//     build caches; Session.Commit returns a persistent TypeHandle whose
//     strategy state (specialized handlers, checkpoint sets, offset lists)
//     is built exactly once and amortized across every post — the paper's
//     Fig. 18 reuse argument as an API, shaped the way an MPI library
//     holds a committed type. Session.Stats reports which plans and
//     gather resolvers the session actually selected.
//   - Endpoints and backends: Session.Endpoint is one NIC with both
//     halves of the paper's symmetric device model. On the receive side,
//     Endpoint.Post enqueues messages against committed handles and Flush
//     executes the batch in a single simulated inbound residency pass; on
//     the send side, Endpoint.Send enqueues outbound messages and
//     FlushSends runs them through one shared outbound device, where
//     sPIN gather handlers execute the lowered gather resolver (contig /
//     vector arithmetic / offset-list binary search) of the same committed
//     block program the receiver scatters with. Either way, real exchanges (alltoall, halo)
//     contend for the device — HPUs, DMA/host-read paths, wire, NIC
//     memory — the way real traffic does. The Backend interface decides
//     what executes a flush or a coupled transfer: SimBackend replays
//     block programs through the modeled 200 Gbit/s sPIN NIC, MemBackend
//     executes them directly on host memory (the differential-testing
//     oracle for both directions); custom backends plug in the same way.
//   - Strategies and one-shot runs: the paper's datatype-processing
//     implementations — Specialized handlers, the general RW-CP / RO-CP /
//     HPU-local strategies, the host-unpack and Portals-4 iovec baselines,
//     the sender-side pack+send / streaming-puts / outbound-sPIN paths —
//     driven either through sessions or through the one-shot Run /
//     RunSend / RunTransfer wrappers, which commit, post and flush a
//     private session per call and byte-verify every receive buffer
//     against the reference unpack. RunTransfer couples the two device
//     halves in ONE simulation joined by the fabric: each packet's
//     injection completion becomes its arrival a wire latency later, so
//     sender backpressure paces the receiver instead of being summed in
//     from a closed-form cost model.
//
// See session.go for the session-layer walkthrough, DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-vs-measured results of
// every figure.
package spinddt

import (
	"spinddt/internal/core"
	"spinddt/internal/ddt"
	"spinddt/internal/hostcpu"
	"spinddt/internal/nic"
)

// Datatype is an MPI derived datatype. Build one with the constructors
// below, commit it, and pass it to Run.
type Datatype = ddt.Type

// Predefined elementary datatypes.
var (
	Char   = ddt.Char
	Byte   = ddt.Byte
	Short  = ddt.Short
	Int    = ddt.Int
	Long   = ddt.Long
	Float  = ddt.Float
	Double = ddt.Double
)

// Elementary returns a basic datatype of the given byte size.
func Elementary(name string, size int64) *Datatype { return ddt.Elementary(name, size) }

// Contiguous returns count consecutive elements of base
// (MPI_Type_contiguous).
func Contiguous(count int, base *Datatype) (*Datatype, error) {
	return ddt.NewContiguous(count, base)
}

// Vector returns count blocks of blockLen base elements strided by stride
// base extents (MPI_Type_vector).
func Vector(count, blockLen, stride int, base *Datatype) (*Datatype, error) {
	return ddt.NewVector(count, blockLen, stride, base)
}

// HVector is Vector with a byte stride (MPI_Type_create_hvector).
func HVector(count, blockLen int, strideBytes int64, base *Datatype) (*Datatype, error) {
	return ddt.NewHVector(count, blockLen, strideBytes, base)
}

// Indexed returns blocks of blockLens[i] elements at displs[i] base extents
// (MPI_Type_indexed).
func Indexed(blockLens, displs []int, base *Datatype) (*Datatype, error) {
	return ddt.NewIndexed(blockLens, displs, base)
}

// IndexedBlock returns fixed-length blocks at the given displacements
// (MPI_Type_create_indexed_block).
func IndexedBlock(blockLen int, displs []int, base *Datatype) (*Datatype, error) {
	return ddt.NewIndexedBlock(blockLen, displs, base)
}

// Struct returns a heterogeneous datatype (MPI_Type_create_struct).
func Struct(blockLens []int, displs []int64, types []*Datatype) (*Datatype, error) {
	return ddt.NewStruct(blockLens, displs, types)
}

// Subarray returns an n-dimensional subarray in row-major order
// (MPI_Type_create_subarray).
func Subarray(sizes, subSizes, starts []int, base *Datatype) (*Datatype, error) {
	return ddt.NewSubarray(sizes, subSizes, starts, base)
}

// Resized overrides a type's lower bound and extent
// (MPI_Type_create_resized).
func Resized(base *Datatype, lb, extent int64) (*Datatype, error) {
	return ddt.NewResized(base, lb, extent)
}

// Normalize rewrites a datatype into an equivalent simpler form, making
// more types eligible for the O(1)-state specialized handler.
func Normalize(t *Datatype) *Datatype { return ddt.Normalize(t) }

// Pack gathers count elements of the type from src into a new buffer.
func Pack(t *Datatype, count int, src []byte) ([]byte, error) { return ddt.Pack(t, count, src) }

// Unpack scatters a packed stream into dst; the reference semantics every
// offloaded strategy reproduces byte-for-byte.
func Unpack(t *Datatype, count int, packed, dst []byte) error {
	return ddt.Unpack(t, count, packed, dst)
}

// Strategy selects a receive-side datatype-processing implementation.
type Strategy = core.Strategy

// The receive-side strategies of the paper.
const (
	// Specialized uses datatype-specific handlers (vector arithmetic or
	// offset lists with binary search).
	Specialized = core.Specialized
	// RWCP uses progressing checkpoints with blocked round-robin
	// scheduling — the paper's best general strategy.
	RWCP = core.RWCP
	// ROCP clones read-only checkpoint snapshots per packet.
	ROCP = core.ROCP
	// HPULocal replicates the MPITypes segment per virtual HPU.
	HPULocal = core.HPULocal
	// HostUnpack is the baseline: RDMA to a staging buffer, CPU unpack.
	HostUnpack = core.HostUnpack
	// PortalsIovec is the Portals 4 scatter-list baseline.
	PortalsIovec = core.PortalsIovec
)

// OffloadStrategies lists the sPIN-based strategies.
var OffloadStrategies = core.OffloadStrategies

// AllStrategies lists every strategy including the baselines.
var AllStrategies = core.AllStrategies

// Request describes one unpack experiment; Result reports it.
type (
	Request = core.Request
	Result  = core.Result
)

// NICConfig configures the simulated NIC; CostModel the HPU handler costs;
// HostConfig the host CPU baseline.
type (
	NICConfig  = nic.Config
	CostModel  = core.CostModel
	HostConfig = hostcpu.Config
)

// DefaultNICConfig returns the paper's NIC: 16 HPUs, 200 Gbit/s, 2 KiB
// packets, PCIe Gen4 x32, 4 MiB NIC memory.
func DefaultNICConfig() NICConfig { return nic.DefaultConfig() }

// DefaultCostModel returns the calibrated handler cost constants.
func DefaultCostModel() CostModel { return core.DefaultCostModel() }

// DefaultHostConfig returns the i7-4770-like host profile.
func DefaultHostConfig() HostConfig { return hostcpu.DefaultConfig() }

// NewRequest returns a Request with the paper's default configuration.
func NewRequest(s Strategy, typ *Datatype, count int) Request {
	return core.NewRequest(s, typ, count)
}

// Run simulates one message receive end to end: it synthesizes the packed
// stream, builds the strategy state (handlers, checkpoints, offset lists),
// replays the packet arrivals through the NIC model, and verifies the
// receive buffer byte-for-byte against the reference Unpack. It is a
// one-shot wrapper over a private session; libraries that reuse datatypes
// should hold a Session and commit TypeHandles instead, amortizing the
// state build across posts.
func Run(req Request) (Result, error) { return core.Run(req) }

// SendStrategy selects a sender-side implementation.
type SendStrategy = core.SendStrategy

// The sender-side strategies of the paper's Fig. 4.
const (
	PackSend      = core.PackSend
	StreamingPuts = core.StreamingPuts
	OutboundSpin  = core.OutboundSpin
)

// SendRequest describes a sender-side experiment; SendResult reports it.
type (
	SendRequest = core.SendRequest
	SendResult  = nic.SendResult
)

// NewSendRequest returns a SendRequest with default configuration.
func NewSendRequest(s SendStrategy, typ *Datatype, count int) SendRequest {
	return core.NewSendRequest(s, typ, count)
}

// RunSend simulates sending count elements of the datatype.
func RunSend(req SendRequest) (SendResult, error) { return core.RunSend(req) }

// TransferRequest describes a coupled end-to-end transfer: a sender-side
// gather strategy feeding a receiver-side scatter strategy, possibly with
// different layouts on the two sides (an on-the-fly transform).
type (
	TransferRequest = core.TransferRequest
	TransferResult  = core.TransferResult
)

// NewTransferRequest returns a TransferRequest with default configuration.
func NewTransferRequest(send SendStrategy, recv Strategy, typ *Datatype, count int) TransferRequest {
	return core.NewTransferRequest(send, recv, typ, count)
}

// RunTransfer simulates the whole path — gather, wire, scatter — and
// byte-verifies the receive buffer against the reference pipeline.
func RunTransfer(req TransferRequest) (TransferResult, error) { return core.RunTransfer(req) }
