// LAMMPS-style particle exchange: ghost atoms live at irregular indices, so
// the exchange uses an indexed datatype — and packets may arrive out of
// order on an adaptively-routed fabric. The RW-CP strategy reverts its
// checkpoints on reordering; the receive buffer stays byte-exact.
//
// Run with: go run ./examples/lammps
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spinddt"
)

func main() {
	// 16384 ghost atoms, each carrying position+velocity (6 doubles), at
	// irregular (sorted, disjoint) indices in the particle arrays.
	rng := rand.New(rand.NewSource(42))
	const atoms = 16384
	atom, err := spinddt.Contiguous(6, spinddt.Double)
	if err != nil {
		log.Fatal(err)
	}
	displs := make([]int, atoms)
	pos := 0
	for i := range displs {
		displs[i] = pos
		pos += 1 + rng.Intn(3)
	}
	exchange, err := spinddt.IndexedBlock(1, displs, atom)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ghost exchange: %d atoms, %d KiB, gamma=%.0f regions/packet\n\n",
		atoms, exchange.Size()/1024, exchange.Gamma(1, 2048))

	for _, window := range []int{0, 16} {
		label := "in-order delivery"
		if window > 0 {
			label = fmt.Sprintf("out-of-order delivery (window %d)", window)
		}
		fmt.Println(label)
		for _, s := range []spinddt.Strategy{spinddt.RWCP, spinddt.Specialized, spinddt.HostUnpack} {
			req := spinddt.NewRequest(s, exchange, 1)
			if window > 0 {
				if s == spinddt.HostUnpack {
					continue // plain RDMA reassembles by offset anyway
				}
				req.Order = reorder(req, window)
			}
			res, err := spinddt.Run(req)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-12v %10v  %6.1f Gbit/s  verified=%v\n",
				s, res.ProcTime, res.ThroughputGbps(), res.Verified)
		}
		fmt.Println()
	}
}

func reorder(req spinddt.Request, window int) []int {
	n := req.NIC.Fabric.NumPackets(req.Type.Size() * int64(req.Count))
	return reorderWindow(n, window)
}

// reorderWindow builds a bounded-displacement permutation with the header
// and completion packets pinned, mirroring the fabric's delivery model.
func reorderWindow(n, window int) []int {
	rng := rand.New(rand.NewSource(7))
	order := make([]int, n)
	keys := make([]float64, n)
	for i := range order {
		order[i] = i
		keys[i] = float64(i)
		if i > 0 && i < n-1 {
			keys[i] += rng.Float64() * float64(window)
		}
	}
	keys[n-1] = float64(n + window)
	for i := 1; i < n; i++ { // stable insertion sort by key
		for j := i; j > 0 && keys[order[j]] < keys[order[j-1]]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	return order
}
