// Quickstart: offload the unpacking of a strided matrix column to the
// simulated sPIN NIC and compare it with host-based unpacking.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spinddt"
)

func main() {
	// A 16-column panel of a 1024x1024 row-major int matrix: 1024 blocks
	// of 64 bytes, 4 KiB apart — the classic non-contiguous transfer.
	column, err := spinddt.Vector(1024, 16, 1024, spinddt.Int)
	if err != nil {
		log.Fatal(err)
	}

	// Receive 16 such panels (a 1 MiB message) with three strategies.
	const count = 16
	fmt.Printf("message: %d KiB, %.0f contiguous regions per packet\n\n",
		column.Size()*count/1024, column.Gamma(count, 2048))

	for _, s := range []spinddt.Strategy{spinddt.Specialized, spinddt.RWCP, spinddt.HostUnpack} {
		res, err := spinddt.Run(spinddt.NewRequest(s, column, count))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v %10v  %7.1f Gbit/s  verified=%v\n",
			s, res.ProcTime, res.ThroughputGbps(), res.Verified)
	}

	fmt.Println("\nThe sPIN NIC scatters each packet into the column layout as it",
		"\narrives — zero-copy — while the host baseline first lands the packed",
		"\nstream in memory and then walks it with the CPU.")
}
