// Quickstart: offload the unpacking of a strided matrix column to the
// simulated sPIN NIC — first as one-shot runs comparing strategies, then
// through a session: commit the datatype once, post many receives against
// the persistent handle, and flush them in one batched NIC pass.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"spinddt"
)

func main() {
	// A 16-column panel of a 1024x1024 row-major int matrix: 1024 blocks
	// of 64 bytes, 4 KiB apart — the classic non-contiguous transfer.
	column, err := spinddt.Vector(1024, 16, 1024, spinddt.Int)
	if err != nil {
		log.Fatal(err)
	}

	// Receive 16 such panels (a 1 MiB message) with three strategies.
	const count = 16
	fmt.Printf("message: %d KiB, %.0f contiguous regions per packet\n\n",
		column.Size()*count/1024, column.Gamma(count, 2048))

	for _, s := range []spinddt.Strategy{spinddt.Specialized, spinddt.RWCP, spinddt.HostUnpack} {
		res, err := spinddt.Run(spinddt.NewRequest(s, column, count))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12v %10v  %7.1f Gbit/s  verified=%v\n",
			s, res.ProcTime, res.ThroughputGbps(), res.Verified)
	}

	// The session API is what an MPI library would hold: commit the type
	// once — the block program and offload state are built exactly once —
	// then post receives against the handle. The first post pays the host
	// preparation; every later one reports zero (the paper's Fig. 18).
	sess := spinddt.NewSession(spinddt.NewSessionConfig())
	handle, err := sess.Commit(column)
	if err != nil {
		log.Fatal(err)
	}
	ep := sess.Endpoint(spinddt.EndpointConfig{})
	futures := make([]*spinddt.Future, 4)
	for i := range futures {
		if futures[i], err = ep.Post(handle, count, spinddt.PostOpts{Seed: int64(i + 1)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := ep.Flush(); err != nil { // one batched NIC residency pass
		log.Fatal(err)
	}
	fmt.Printf("\nsession: %v handle, %d posts on one endpoint\n", handle.Strategy(), len(futures))
	for i, f := range futures {
		res, err := f.Wait()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  post %d: proc=%-12v host-prep=%-10v verified=%v\n",
			i, res.ProcTime, res.Prep.Total(), res.Verified)
	}

	fmt.Println("\nThe sPIN NIC scatters each packet into the column layout as it",
		"\narrives — zero-copy — while the host baseline first lands the packed",
		"\nstream in memory and then walks it with the CPU. The committed handle",
		"\nis built once: only the first post carries the preparation cost.")
}
