// FFT transpose: express a matrix transposition as an MPI datatype (the
// zero-copy FFT trick of Hoefler & Gottlieb the paper scales in Fig. 19)
// and let the NIC perform it while the message arrives.
//
// The sender transmits its rows as-is; the receiver's datatype scatters
// each incoming row into a column of the destination matrix, so the
// transpose happens on the fly, with no intermediate buffer.
//
// Run with: go run ./examples/ffttranspose
package main

import (
	"encoding/binary"
	"fmt"
	"log"
	"math"

	"spinddt"
)

const n = 64 // matrix dimension

func main() {
	// Receive datatype: one incoming row becomes one column — a vector of
	// n elements strided by the row length, resized so consecutive rows
	// start one element apart.
	col, err := spinddt.Vector(n, 1, n, spinddt.Double)
	if err != nil {
		log.Fatal(err)
	}
	colStep, err := spinddt.Resized(col, 0, 8)
	if err != nil {
		log.Fatal(err)
	}
	transpose, err := spinddt.Contiguous(n, colStep)
	if err != nil {
		log.Fatal(err)
	}

	// Functional demonstration: A's rows, streamed in packed order and
	// unpacked with the transpose datatype, land as A^T.
	a := make([]byte, n*n*8)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			put(a, i, j, float64(i*1000+j))
		}
	}
	b := make([]byte, n*n*8)
	if err := spinddt.Unpack(transpose, 1, a, b); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if get(b, j, i) != float64(i*1000+j) {
				log.Fatalf("B[%d][%d] != A[%d][%d]", j, i, i, j)
			}
		}
	}
	fmt.Printf("transpose-by-datatype verified on a %dx%d matrix\n\n", n, n)

	// Timing: the same datatype at FFT-sized messages, NIC vs host.
	big, err := spinddt.Vector(512, 512, 4096, spinddt.Double)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range []spinddt.Strategy{spinddt.RWCP, spinddt.HostUnpack} {
		res, err := spinddt.Run(spinddt.NewRequest(s, big, 1))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-6v  transpose of a 2 MiB panel: %10v (%.1f Gbit/s)\n",
			s, res.ProcTime, res.ThroughputGbps())
	}
}

func put(m []byte, i, j int, v float64) {
	binary.LittleEndian.PutUint64(m[(i*n+j)*8:], math.Float64bits(v))
}

func get(m []byte, i, j int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(m[(i*n+j)*8:]))
}
