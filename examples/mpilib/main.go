// MPI integration (paper Sec. 3.2.6 and Fig. 18): how an MPI library maps
// onto the session API. MPI_Type_commit becomes Session.Commit — the
// strategy is auto-selected (vector-like layouts take the specialized
// handler, irregular ones RW-CP) and the offload state is built exactly
// once per handle. Posted receives become Endpoint.Post against the
// persistent handles; a collective's receive side becomes a batch of
// posts flushed through one NIC residency pass; MPI_Type_free becomes
// Free.
//
// Run with: go run ./examples/mpilib
package main

import (
	"fmt"
	"log"

	"spinddt"
)

func main() {
	sess := spinddt.NewSession(spinddt.NewSessionConfig())

	// 1. Commit: a strided face takes the specialized handler, an
	// irregular particle exchange takes RW-CP — the same selection an MPI
	// library performs at MPI_Type_commit.
	face, err := spinddt.Vector(4096, 16, 32, spinddt.Int)
	if err != nil {
		log.Fatal(err)
	}
	displs := make([]int, 4096)
	for i := range displs {
		displs[i] = i*3 + i%2
	}
	particles, err := spinddt.IndexedBlock(2, displs, spinddt.Double)
	if err != nil {
		log.Fatal(err)
	}
	faceH, err := sess.Commit(face)
	if err != nil {
		log.Fatal(err)
	}
	partH, err := sess.Commit(particles)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed: face -> %v, particles -> %v\n", faceH.Strategy(), partH.Strategy())

	// 2. Point-to-point receives: each post reuses the committed state.
	// Only the first post of a handle reports host preparation.
	ep := sess.Endpoint(spinddt.EndpointConfig{})
	for i := 0; i < 2; i++ {
		for _, h := range []*spinddt.TypeHandle{faceH, partH} {
			fut, err := ep.Post(h, 1, spinddt.PostOpts{Seed: int64(i + 1)})
			if err != nil {
				log.Fatal(err)
			}
			res, err := fut.Wait()
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("recv %-11v post %d: proc=%-12v host-prep=%-10v verified=%v\n",
				res.Strategy, i, res.ProcTime, res.Prep.Total(), res.Verified)
		}
	}

	// 3. A collective's receive side: seven peers' face messages posted as
	// one batch and flushed through a single NIC residency pass — the
	// messages contend for the endpoint's HPUs, DMA and NIC memory the way
	// real alltoall traffic does.
	exchange := sess.Endpoint(spinddt.EndpointConfig{})
	const peers = 7
	futures := make([]*spinddt.Future, peers)
	for p := range futures {
		if futures[p], err = exchange.Post(faceH, 1, spinddt.PostOpts{Seed: int64(100 + p)}); err != nil {
			log.Fatal(err)
		}
	}
	if err := exchange.Flush(); err != nil {
		log.Fatal(err)
	}
	var last spinddt.Result
	verified := 0
	for _, f := range futures {
		res, err := f.Wait()
		if err != nil {
			log.Fatal(err)
		}
		if res.Verified {
			verified++
		}
		if res.NIC.Done > last.NIC.Done {
			last = res
		}
	}
	fmt.Printf("alltoall:  %d messages in one residency pass, last done at %v, %d/%d verified\n",
		peers, last.NIC.Done, verified, peers)

	// 4. MPI_Type_free: the handle is released; later posts fail, the
	// session's caches keep the immutable artifacts for a cheap re-commit.
	faceH.Free()
	if _, err := ep.Post(faceH, 1, spinddt.PostOpts{}); err != nil {
		fmt.Printf("freed:     post after Free correctly fails (%v)\n", err)
	}
}
