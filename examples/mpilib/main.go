// MPI integration (paper Sec. 3.2.6): committing datatypes selects offload
// strategies, posting receives allocates NIC memory with LRU victim
// selection, exhausted NIC memory falls back to host unpacking, and
// unexpected messages take the overflow path.
//
// This example drives internal/mpi through four scenarios and prints the
// library's bookkeeping. (It imports internal packages: it demonstrates the
// integration layer, which downstream users would reach through their MPI
// implementation, not the public simulation API.)
//
// Run with: go run ./examples/mpilib
package main

import (
	"fmt"
	"log"
	"math/rand"

	"spinddt/internal/ddt"
	"spinddt/internal/mpi"
	"spinddt/internal/nic"
	"spinddt/internal/portals"
)

func main() {
	cfg := nic.DefaultConfig()
	lib, err := mpi.NewLib(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Commit: a strided face takes the specialized handler; an
	// irregular particle exchange takes RW-CP.
	face, err := lib.CommitType(ddt.MustVector(4096, 16, 32, ddt.Int), mpi.Attr{Priority: 5})
	if err != nil {
		log.Fatal(err)
	}
	displs := make([]int, 4096)
	for i := range displs {
		displs[i] = i*3 + i%2
	}
	particles, err := lib.CommitType(ddt.MustIndexedBlock(2, displs, ddt.Double), mpi.Attr{Priority: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("committed: face -> %v, particles -> %v\n", face.Strategy(), particles.Strategy())

	// 2. Offloaded receive: post, deliver, verify.
	deliver(lib, face, 4, 1)
	fmt.Printf("after face recv:      NIC memory %6d B, stats %+v\n", lib.NICMemUsed(), lib.Stats())

	// 3. Second datatype: allocates beside the first (or evicts LRU-first
	// if it would not fit).
	deliver(lib, particles, 1, 2)
	fmt.Printf("after particle recv:  NIC memory %6d B, stats %+v\n", lib.NICMemUsed(), lib.Stats())

	// 4. Unexpected message: it arrives before the receive and is staged
	// through the overflow list; the late receive unpacks on the host.
	packed := make([]byte, face.DDT().Size()*2)
	rand.New(rand.NewSource(3)).Read(packed)
	if _, err := lib.Deliver(99, packed, nil); err != nil {
		log.Fatal(err)
	}
	_, hi := face.DDT().Footprint(2)
	late, err := lib.PostRecv(face, 2, 99, make([]byte, hi))
	if err != nil {
		log.Fatal(err)
	}
	if err := late.Verify(packed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unexpected message:   handled on the host (offload impossible: datatype unknown at match time)\n")
	fmt.Printf("final stats:          %+v\n", lib.Stats())
}

func deliver(lib *mpi.Lib, typ *mpi.Type, count int, match int) {
	_, hi := typ.DDT().Footprint(count)
	recv, err := lib.PostRecv(typ, count, portals.MatchBits(match), make([]byte, hi))
	if err != nil {
		log.Fatal(err)
	}
	packed := make([]byte, typ.DDT().Size()*int64(count))
	rand.New(rand.NewSource(int64(match))).Read(packed)
	if _, err := lib.Deliver(portals.MatchBits(match), packed, nil); err != nil {
		log.Fatal(err)
	}
	if err := recv.Verify(packed); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("recv %-10v offloaded=%-5v proc=%v\n",
		typ.Strategy(), recv.Result.Offloaded, recv.Result.ProcTime)
}
