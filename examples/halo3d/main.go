// Halo3D: the NAS-MG-style stencil halo exchange of the paper's
// motivation. A 3D grid exchanges its six faces; depending on the
// direction, a face is contiguous (x), row-strided (y) or element-strided
// (z), spanning the whole range of offload-friendliness.
//
// Run with: go run ./examples/halo3d
package main

import (
	"fmt"
	"log"

	"spinddt"
)

const grid = 96 // 96^3 doubles

func face(dim int) *spinddt.Datatype {
	sizes := []int{grid, grid, grid}
	sub := []int{grid, grid, grid}
	sub[dim] = 1
	typ, err := spinddt.Subarray(sizes, sub, []int{0, 0, 0}, spinddt.Double)
	if err != nil {
		log.Fatal(err)
	}
	return typ
}

func main() {
	faces := []struct {
		name string
		typ  *spinddt.Datatype
	}{
		{"x-face (one contiguous plane)", face(0)},
		{"y-face (rows strided by a plane)", face(1)},
		{"z-face (single elements strided)", face(2)},
	}
	strategies := []spinddt.Strategy{
		spinddt.Specialized, spinddt.RWCP, spinddt.HostUnpack, spinddt.PortalsIovec,
	}

	fmt.Printf("3D halo exchange, %d^3 doubles, one face = %d KiB\n\n",
		grid, faces[0].typ.Size()/1024)
	fmt.Printf("%-34s %8s", "face", "gamma")
	for _, s := range strategies {
		fmt.Printf("  %12v", s)
	}
	fmt.Println()

	for _, f := range faces {
		fmt.Printf("%-34s %8.1f", f.name, f.typ.Gamma(1, 2048))
		var host spinddt.Result
		for _, s := range strategies {
			res, err := spinddt.Run(spinddt.NewRequest(s, f.typ, 1))
			if err != nil {
				log.Fatal(err)
			}
			if s == spinddt.HostUnpack {
				host = res
			}
			fmt.Printf("  %10.1fus", res.ProcTime.Microseconds())
		}
		_ = host
		fmt.Println()
	}

	fmt.Println("\nContiguous faces gain nothing from offload (plain RDMA already",
		"\nworks); strided faces gain the most; the element-strided z-face is",
		"\nthe hard regime where tiny blocks erode every strategy.")
}
